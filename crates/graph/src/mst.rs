//! Reference minimum-spanning-tree algorithms (Kruskal, Prim) and
//! spanning-forest verification.
//!
//! These are the correctness oracles for the distributed
//! Boruvka-over-shortcuts MST in `lcs-apps` (Corollary 1.2 of the paper).
//! Ties are broken by edge id, which makes the MST unique and lets the
//! distributed and centralized algorithms be compared edge-by-edge, not
//! just by weight.

use crate::graph::{EdgeId, NodeId};
use crate::union_find::UnionFind;
use crate::weighted::WeightedGraph;

/// A minimum spanning forest: edges plus total weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningForest {
    /// Chosen edges, sorted by edge id.
    pub edges: Vec<EdgeId>,
    /// Sum of chosen edge weights.
    pub weight: u64,
    /// Number of trees in the forest (1 when the graph is connected).
    pub num_trees: usize,
}

/// Tie-broken comparison key: `(weight, edge id)`. Both reference and
/// distributed MSTs must use this key for edge-level comparability.
#[inline]
pub fn mst_key(wg: &WeightedGraph, e: EdgeId) -> (u64, u32) {
    (wg.weight(e), e.0)
}

/// Kruskal's algorithm with `(weight, edge id)` tie-breaking.
///
/// # Examples
///
/// ```
/// use lcs_graph::{WeightedGraph, kruskal};
///
/// let wg = WeightedGraph::from_weighted_edges(
///     4,
///     &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4), (0, 2, 5)],
/// ).unwrap();
/// let mst = kruskal(&wg);
/// assert_eq!(mst.weight, 6);
/// assert_eq!(mst.num_trees, 1);
/// assert_eq!(mst.edges.len(), 3);
/// ```
pub fn kruskal(wg: &WeightedGraph) -> SpanningForest {
    let g = wg.graph();
    let mut order: Vec<EdgeId> = g.edge_ids().collect();
    order.sort_unstable_by_key(|&e| mst_key(wg, e));
    let mut uf = UnionFind::new(g.n());
    let mut edges = Vec::new();
    let mut weight = 0u64;
    for e in order {
        let (u, v) = g.edge_endpoints(e);
        if uf.union(u, v) {
            edges.push(e);
            weight += wg.weight(e);
        }
    }
    edges.sort_unstable();
    SpanningForest {
        edges,
        weight,
        num_trees: uf.num_sets(),
    }
}

/// Prim's algorithm (lazy heap) from node 0 of each component, with the
/// same tie-breaking as [`kruskal`]. Exists as an independent oracle.
pub fn prim(wg: &WeightedGraph) -> SpanningForest {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let g = wg.graph();
    let n = g.n();
    let mut in_tree = vec![false; n];
    let mut edges = Vec::new();
    let mut weight = 0u64;
    let mut num_trees = 0usize;
    for root in 0..n as u32 {
        if in_tree[root as usize] {
            continue;
        }
        num_trees += 1;
        in_tree[root as usize] = true;
        let mut heap: BinaryHeap<Reverse<(u64, u32, NodeId)>> = BinaryHeap::new();
        for (w, e) in g.neighbors_with_edges(root) {
            heap.push(Reverse((wg.weight(e), e.0, w)));
        }
        while let Some(Reverse((wt, eid, v))) = heap.pop() {
            if in_tree[v as usize] {
                continue;
            }
            in_tree[v as usize] = true;
            edges.push(EdgeId(eid));
            weight += wt;
            for (w, e) in g.neighbors_with_edges(v) {
                if !in_tree[w as usize] {
                    heap.push(Reverse((wg.weight(e), e.0, w)));
                }
            }
        }
    }
    edges.sort_unstable();
    SpanningForest {
        edges,
        weight,
        num_trees,
    }
}

/// Checks that `edges` form a spanning forest of `wg` (acyclic, and
/// spanning each connected component), returning its weight when valid.
pub fn verify_spanning_forest(wg: &WeightedGraph, edges: &[EdgeId]) -> Option<u64> {
    let g = wg.graph();
    let mut uf = UnionFind::new(g.n());
    let mut weight = 0u64;
    for &e in edges {
        let (u, v) = g.edge_endpoints(e);
        if !uf.union(u, v) {
            return None; // cycle
        }
        weight += wg.weight(e);
    }
    // Spanning: the forest must connect exactly as much as the graph.
    let mut guf = UnionFind::new(g.n());
    for &(u, v) in g.edges() {
        guf.union(u, v);
    }
    if uf.num_sets() != guf.num_sets() {
        return None;
    }
    Some(weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_connected(n: usize, extra: usize, seed: u64) -> WeightedGraph {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        // Random spanning tree by random attachment.
        for v in 1..n as u32 {
            let u = rng.gen_range(0..v);
            edges.push((u, v));
        }
        for _ in 0..extra {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                edges.push((u, v));
            }
        }
        let g = crate::graph::Graph::from_edges(n, &edges).unwrap();
        WeightedGraph::with_random_weights(g, 100, &mut rng)
    }

    #[test]
    fn kruskal_matches_prim_weight_and_edges() {
        for seed in 0..10 {
            let wg = random_connected(40, 80, seed);
            let k = kruskal(&wg);
            let p = prim(&wg);
            assert_eq!(k.weight, p.weight, "seed {seed}");
            // With (weight, id) tie-breaking the MST is unique.
            assert_eq!(k.edges, p.edges, "seed {seed}");
            assert_eq!(k.num_trees, 1);
            assert_eq!(verify_spanning_forest(&wg, &k.edges), Some(k.weight));
        }
    }

    #[test]
    fn forest_on_disconnected_graph() {
        let wg = WeightedGraph::from_weighted_edges(5, &[(0, 1, 3), (1, 2, 1), (3, 4, 7)]).unwrap();
        let k = kruskal(&wg);
        assert_eq!(k.num_trees, 2);
        assert_eq!(k.weight, 11);
        assert_eq!(k.edges.len(), 3);
    }

    #[test]
    fn verify_rejects_cycle_and_non_spanning() {
        let wg =
            WeightedGraph::from_weighted_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (2, 3, 1)])
                .unwrap();
        let g = wg.graph();
        let cyc = [
            g.edge_between(0, 1).unwrap(),
            g.edge_between(1, 2).unwrap(),
            g.edge_between(0, 2).unwrap(),
        ];
        assert_eq!(verify_spanning_forest(&wg, &cyc), None);
        let partial = [g.edge_between(0, 1).unwrap()];
        assert_eq!(verify_spanning_forest(&wg, &partial), None);
    }

    #[test]
    fn single_node_and_empty() {
        let wg = WeightedGraph::from_weighted_edges(1, &[]).unwrap();
        let k = kruskal(&wg);
        assert_eq!(k.weight, 0);
        assert_eq!(k.num_trees, 1);
        let empty = WeightedGraph::from_weighted_edges(0, &[]).unwrap();
        assert_eq!(kruskal(&empty).num_trees, 0);
    }
}
