//! Dijkstra reference single-source shortest paths (weighted).
//!
//! Oracle for the approximate distributed SSSP in `lcs-apps`
//! (Corollary 4.2).

use crate::graph::NodeId;
use crate::weighted::WeightedGraph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Weighted distance for unreachable nodes.
pub const W_UNREACHABLE: u64 = u64::MAX;

/// Dijkstra distances from `source`.
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Examples
///
/// ```
/// use lcs_graph::{WeightedGraph, dijkstra};
///
/// let wg = WeightedGraph::from_weighted_edges(
///     4,
///     &[(0, 1, 1), (1, 2, 1), (0, 2, 5), (2, 3, 1)],
/// ).unwrap();
/// assert_eq!(dijkstra(&wg, 0), vec![0, 1, 2, 3]);
/// ```
pub fn dijkstra(wg: &WeightedGraph, source: NodeId) -> Vec<u64> {
    let g = wg.graph();
    assert!((source as usize) < g.n(), "source out of range");
    let mut dist = vec![W_UNREACHABLE; g.n()];
    let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for (v, e) in g.neighbors_with_edges(u) {
            let nd = d.saturating_add(wg.weight(e));
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Bellman–Ford distances limited to paths of at most `hops` edges.
/// Matches what a `hops`-round distributed Bellman–Ford can know.
pub fn bounded_hop_distances(wg: &WeightedGraph, source: NodeId, hops: usize) -> Vec<u64> {
    let g = wg.graph();
    assert!((source as usize) < g.n(), "source out of range");
    let mut dist = vec![W_UNREACHABLE; g.n()];
    dist[source as usize] = 0;
    for _ in 0..hops {
        let mut next = dist.clone();
        let mut changed = false;
        for e in g.edge_ids() {
            let (u, v) = g.edge_endpoints(e);
            let w = wg.weight(e);
            let du = dist[u as usize];
            let dv = dist[v as usize];
            if du != W_UNREACHABLE && du + w < next[v as usize] {
                next[v as usize] = du + w;
                changed = true;
            }
            if dv != W_UNREACHABLE && dv + w < next[u as usize] {
                next[u as usize] = dv + w;
                changed = true;
            }
        }
        dist = next;
        if !changed {
            break;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn dijkstra_prefers_light_paths() {
        let wg = WeightedGraph::from_weighted_edges(
            5,
            &[(0, 1, 10), (0, 2, 1), (2, 3, 1), (3, 1, 1), (1, 4, 1)],
        )
        .unwrap();
        let d = dijkstra(&wg, 0);
        assert_eq!(d[1], 3);
        assert_eq!(d[4], 4);
    }

    #[test]
    fn unreachable_nodes() {
        let wg = WeightedGraph::from_weighted_edges(3, &[(0, 1, 2)]).unwrap();
        let d = dijkstra(&wg, 0);
        assert_eq!(d[2], W_UNREACHABLE);
    }

    #[test]
    fn bounded_hops_converge_to_dijkstra() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut edges = Vec::new();
        let n = 30;
        for v in 1..n as u32 {
            edges.push((rng.gen_range(0..v), v, rng.gen_range(1..50)));
        }
        for _ in 0..40 {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                edges.push((u, v, rng.gen_range(1..50)));
            }
        }
        let wg = WeightedGraph::from_weighted_edges(n, &edges).unwrap();
        let exact = dijkstra(&wg, 0);
        let bounded = bounded_hop_distances(&wg, 0, n);
        assert_eq!(exact, bounded);
        // One hop only sees direct neighbors.
        let one = bounded_hop_distances(&wg, 0, 1);
        for v in 0..n {
            assert!(one[v] >= exact[v]);
        }
    }
}
