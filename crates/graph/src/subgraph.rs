//! Materialized subgraphs over an edge subset of a parent graph.
//!
//! The augmented part `G[S_i] ∪ H_i` of a shortcut is exactly such a
//! subgraph: a set of parent-graph edges together with every endpoint they
//! touch. [`EdgeSubgraph`] re-indexes the touched nodes densely so BFS and
//! diameter computations run in time proportional to the subgraph, not the
//! parent graph.

use crate::bfs::{bfs, BfsOptions, UNREACHABLE};
use crate::graph::{EdgeId, Graph, NodeId};
use std::collections::HashMap;

/// A subgraph of a parent [`Graph`] induced by an edge subset (plus,
/// optionally, extra isolated nodes that must be present, e.g. singleton
/// parts).
#[derive(Debug, Clone)]
pub struct EdgeSubgraph {
    /// Dense local graph over the touched nodes.
    local: Graph,
    /// Local index -> parent node id.
    to_parent: Vec<NodeId>,
    /// Parent node id -> local index.
    to_local: HashMap<NodeId, u32>,
}

impl EdgeSubgraph {
    /// Builds the subgraph of `g` spanned by `edges`, forcing
    /// `extra_nodes` to exist even when isolated. Duplicate edge ids are
    /// collapsed.
    ///
    /// # Panics
    ///
    /// Panics if an edge id is out of range for `g`.
    pub fn new(g: &Graph, edges: &[EdgeId], extra_nodes: &[NodeId]) -> Self {
        let mut to_parent: Vec<NodeId> = Vec::new();
        let mut to_local: HashMap<NodeId, u32> = HashMap::new();
        let local_id =
            |v: NodeId, to_parent: &mut Vec<NodeId>, to_local: &mut HashMap<NodeId, u32>| {
                *to_local.entry(v).or_insert_with(|| {
                    to_parent.push(v);
                    (to_parent.len() - 1) as u32
                })
            };
        for &v in extra_nodes {
            local_id(v, &mut to_parent, &mut to_local);
        }
        let mut local_edges = Vec::with_capacity(edges.len());
        for &e in edges {
            let (u, v) = g.edge_endpoints(e);
            let lu = local_id(u, &mut to_parent, &mut to_local);
            let lv = local_id(v, &mut to_parent, &mut to_local);
            local_edges.push((lu, lv));
        }
        let local = Graph::from_edges(to_parent.len(), &local_edges)
            .expect("edge endpoints are valid parent nodes");
        EdgeSubgraph {
            local,
            to_parent,
            to_local,
        }
    }

    /// The dense local graph.
    pub fn local(&self) -> &Graph {
        &self.local
    }

    /// Number of nodes in the subgraph.
    pub fn n(&self) -> usize {
        self.local.n()
    }

    /// Number of edges in the subgraph.
    pub fn m(&self) -> usize {
        self.local.m()
    }

    /// Maps a parent node to its local index, if present.
    pub fn local_of(&self, parent: NodeId) -> Option<u32> {
        self.to_local.get(&parent).copied()
    }

    /// Maps a local index back to the parent node id.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    pub fn parent_of(&self, local: u32) -> NodeId {
        self.to_parent[local as usize]
    }

    /// Hop distance between two parent nodes inside the subgraph;
    /// `None` if either is absent or they are disconnected here.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Option<u32> {
        let (lu, lv) = (self.local_of(u)?, self.local_of(v)?);
        let d = bfs(&self.local, &[lu], &BfsOptions::default()).dist[lv as usize];
        (d != UNREACHABLE).then_some(d)
    }

    /// Exact maximum finite pairwise distance among `targets` (parent
    /// ids), ignoring targets absent from the subgraph. Returns
    /// `Some(u32::MAX)` if two present targets are disconnected within
    /// the subgraph, and `None` when fewer than two targets are present.
    pub fn max_pairwise_distance(&self, targets: &[NodeId]) -> Option<u32> {
        let locals: Vec<u32> = targets.iter().filter_map(|&v| self.local_of(v)).collect();
        if locals.len() < 2 {
            return None;
        }
        let mut best = 0u32;
        for &s in &locals {
            let dist = bfs(&self.local, &[s], &BfsOptions::default()).dist;
            for &t in &locals {
                let d = dist[t as usize];
                if d == UNREACHABLE {
                    return Some(u32::MAX);
                }
                best = best.max(d);
            }
        }
        Some(best)
    }

    /// Exact diameter of the connected component containing `anchor`
    /// (a parent id); `None` if `anchor` is absent.
    pub fn component_diameter(&self, anchor: NodeId) -> Option<u32> {
        let la = self.local_of(anchor)?;
        let from_anchor = bfs(&self.local, &[la], &BfsOptions::default()).dist;
        let members: Vec<u32> = (0..self.n() as u32)
            .filter(|&v| from_anchor[v as usize] != UNREACHABLE)
            .collect();
        let mut best = 0;
        for &s in &members {
            let dist = bfs(&self.local, &[s], &BfsOptions::default()).dist;
            for &t in &members {
                if dist[t as usize] != UNREACHABLE {
                    best = best.max(dist[t as usize]);
                }
            }
        }
        Some(best)
    }

    /// Double-sweep estimate of the max pairwise distance among
    /// `targets`: a cheap lower bound paired with the `2·radius` upper
    /// bound from `anchor`. Returns `None` when fewer than two targets
    /// are present; `(u32::MAX, u32::MAX)` if some present target is
    /// unreachable from `anchor`.
    pub fn estimate_pairwise_distance(
        &self,
        targets: &[NodeId],
        anchor: NodeId,
    ) -> Option<(u32, u32)> {
        let locals: Vec<u32> = targets.iter().filter_map(|&v| self.local_of(v)).collect();
        if locals.len() < 2 {
            return None;
        }
        let la = self.local_of(anchor)?;
        let d0 = bfs(&self.local, &[la], &BfsOptions::default()).dist;
        let mut radius = 0u32;
        let mut far = la;
        for &t in &locals {
            let d = d0[t as usize];
            if d == UNREACHABLE {
                return Some((u32::MAX, u32::MAX));
            }
            if d > radius {
                radius = d;
                far = t;
            }
        }
        // Second sweep from the farthest target.
        let d1 = bfs(&self.local, &[far], &BfsOptions::default()).dist;
        let lower = locals
            .iter()
            .map(|&t| d1[t as usize])
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0);
        let upper = radius.saturating_mul(2);
        Some((lower.max(radius), upper.max(lower)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parent() -> Graph {
        // 0-1-2-3-4 path plus chord 0-4 and spur 2-5.
        Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (2, 5)]).unwrap()
    }

    fn eids(g: &Graph, pairs: &[(NodeId, NodeId)]) -> Vec<EdgeId> {
        pairs
            .iter()
            .map(|&(u, v)| g.edge_between(u, v).expect("edge exists"))
            .collect()
    }

    #[test]
    fn builds_with_local_reindexing() {
        let g = parent();
        let sub = EdgeSubgraph::new(&g, &eids(&g, &[(2, 3), (3, 4)]), &[]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 2);
        assert!(sub.local_of(0).is_none());
        assert_eq!(sub.parent_of(sub.local_of(3).unwrap()), 3);
    }

    #[test]
    fn distances_respect_subgraph_not_parent() {
        let g = parent();
        // Without the 0-4 chord, 0 to 4 takes the long way.
        let sub = EdgeSubgraph::new(&g, &eids(&g, &[(0, 1), (1, 2), (2, 3), (3, 4)]), &[]);
        assert_eq!(sub.distance(0, 4), Some(4));
        // Parent has the chord.
        let full = EdgeSubgraph::new(&g, &g.edge_ids().collect::<Vec<_>>(), &[]);
        assert_eq!(full.distance(0, 4), Some(1));
    }

    #[test]
    fn disconnected_pairwise_is_max() {
        let g = parent();
        let sub = EdgeSubgraph::new(&g, &eids(&g, &[(0, 1), (3, 4)]), &[]);
        assert_eq!(sub.max_pairwise_distance(&[0, 4]), Some(u32::MAX));
        assert_eq!(sub.distance(0, 4), None);
    }

    #[test]
    fn pairwise_distance_exact() {
        let g = parent();
        let sub = EdgeSubgraph::new(&g, &eids(&g, &[(0, 1), (1, 2), (2, 3), (2, 5)]), &[]);
        assert_eq!(sub.max_pairwise_distance(&[0, 3, 5]), Some(3));
        // Fewer than two present targets.
        assert_eq!(sub.max_pairwise_distance(&[0]), None);
        assert_eq!(sub.max_pairwise_distance(&[]), None);
    }

    #[test]
    fn extra_nodes_can_be_isolated() {
        let g = parent();
        let sub = EdgeSubgraph::new(&g, &[], &[5]);
        assert_eq!(sub.n(), 1);
        assert_eq!(sub.m(), 0);
        assert_eq!(sub.max_pairwise_distance(&[5]), None);
        assert_eq!(sub.component_diameter(5), Some(0));
    }

    #[test]
    fn component_diameter_of_path() {
        let g = parent();
        let sub = EdgeSubgraph::new(&g, &eids(&g, &[(0, 1), (1, 2), (2, 3)]), &[]);
        assert_eq!(sub.component_diameter(0), Some(3));
        assert_eq!(sub.component_diameter(5), None);
    }

    #[test]
    fn estimate_brackets_exact() {
        let g = parent();
        let sub = EdgeSubgraph::new(&g, &eids(&g, &[(0, 1), (1, 2), (2, 3), (3, 4)]), &[]);
        let exact = sub.max_pairwise_distance(&[0, 2, 4]).unwrap();
        let (lo, hi) = sub.estimate_pairwise_distance(&[0, 2, 4], 2).unwrap();
        assert!(lo <= exact, "lower bound {lo} vs exact {exact}");
        assert!(hi >= exact, "upper bound {hi} vs exact {exact}");
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = parent();
        let e = g.edge_between(0, 1).unwrap();
        let sub = EdgeSubgraph::new(&g, &[e, e, e], &[]);
        assert_eq!(sub.m(), 1);
    }
}
