//! Union–find (disjoint set union) with union by rank and path halving.
//!
//! Used by the reference Kruskal MST, connected components, and the
//! Boruvka fragment bookkeeping in `lcs-apps`.

/// Disjoint-set forest over `0..n`.
///
/// # Examples
///
/// ```
/// use lcs_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(uf.union(2, 3));
/// assert!(!uf.union(1, 0)); // already joined
/// assert_eq!(uf.num_sets(), 2);
/// assert!(uf.same_set(0, 1));
/// assert!(!uf.same_set(0, 2));
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Representative of `x`'s set (with path halving).
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns true iff they were
    /// distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.num_sets(), 3);
        for i in 0..3 {
            assert_eq!(uf.find(i), i);
        }
        assert!(!uf.is_empty());
        assert_eq!(uf.len(), 3);
    }

    #[test]
    fn chain_unions() {
        let mut uf = UnionFind::new(10);
        for i in 0..9 {
            assert!(uf.union(i, i + 1));
        }
        assert_eq!(uf.num_sets(), 1);
        let r = uf.find(0);
        for i in 0..10 {
            assert_eq!(uf.find(i), r);
        }
    }

    #[test]
    fn empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }

    #[test]
    fn union_is_idempotent_on_same_set() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.num_sets(), 2);
    }
}
