//! Edge-weighted view over a [`Graph`].
//!
//! Weights are `u64` (the paper's applications assume polynomially
//! bounded integer weights, which fit in one CONGEST message). The
//! topology is shared with the unweighted layer so BFS/diameter utilities
//! keep working on the same node/edge ids.

use crate::graph::{EdgeId, Graph, GraphError, NodeId};
use rand::Rng;
use std::fmt;

/// Error constructing a [`WeightedGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedGraphError {
    /// Underlying graph construction failed.
    Graph(GraphError),
    /// `weights.len() != g.m()`.
    WeightCountMismatch {
        /// Number of weights supplied.
        weights: usize,
        /// Number of edges in the graph.
        edges: usize,
    },
}

impl fmt::Display for WeightedGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightedGraphError::Graph(e) => write!(f, "graph error: {e}"),
            WeightedGraphError::WeightCountMismatch { weights, edges } => {
                write!(f, "{weights} weights for {edges} edges")
            }
        }
    }
}

impl std::error::Error for WeightedGraphError {}

impl From<GraphError> for WeightedGraphError {
    fn from(e: GraphError) -> Self {
        WeightedGraphError::Graph(e)
    }
}

/// An undirected graph with one `u64` weight per edge.
///
/// # Examples
///
/// ```
/// use lcs_graph::{Graph, WeightedGraph};
///
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// let wg = WeightedGraph::new(g, vec![5, 7]).unwrap();
/// let e = wg.graph().edge_between(0, 1).unwrap();
/// assert_eq!(wg.weight(e), 5);
/// assert_eq!(wg.total_weight(), 12);
/// ```
#[derive(Debug, Clone)]
pub struct WeightedGraph {
    graph: Graph,
    weights: Vec<u64>,
}

impl WeightedGraph {
    /// Attaches weights (indexed by [`EdgeId`]) to a graph.
    ///
    /// # Errors
    ///
    /// Returns [`WeightedGraphError::WeightCountMismatch`] when the
    /// weight vector length differs from the edge count.
    pub fn new(graph: Graph, weights: Vec<u64>) -> Result<Self, WeightedGraphError> {
        if weights.len() != graph.m() {
            return Err(WeightedGraphError::WeightCountMismatch {
                weights: weights.len(),
                edges: graph.m(),
            });
        }
        Ok(WeightedGraph { graph, weights })
    }

    /// Builds topology and weights together from `(u, v, w)` triples.
    /// Duplicate edges keep the *minimum* weight supplied.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from topology construction.
    pub fn from_weighted_edges(
        n: usize,
        edges: &[(NodeId, NodeId, u64)],
    ) -> Result<Self, WeightedGraphError> {
        let topo: Vec<(NodeId, NodeId)> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
        let graph = Graph::from_edges(n, &topo)?;
        let mut weights = vec![u64::MAX; graph.m()];
        for &(u, v, w) in edges {
            let e = graph
                .edge_between(u, v)
                .expect("edge present after construction");
            weights[e.index()] = weights[e.index()].min(w);
        }
        Ok(WeightedGraph { graph, weights })
    }

    /// Uniform random weights in `[1, max_weight]` for an existing
    /// topology.
    pub fn with_random_weights<R: Rng>(graph: Graph, max_weight: u64, rng: &mut R) -> Self {
        let weights = (0..graph.m())
            .map(|_| rng.gen_range(1..=max_weight.max(1)))
            .collect();
        WeightedGraph { graph, weights }
    }

    /// The underlying topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Weight of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> u64 {
        self.weights[e.index()]
    }

    /// All weights indexed by edge id.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// Sum of weights over an edge subset.
    pub fn subset_weight(&self, edges: &[EdgeId]) -> u64 {
        edges.iter().map(|&e| self.weight(e)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn weight_count_must_match() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let err = WeightedGraph::new(g, vec![1]).unwrap_err();
        assert!(matches!(
            err,
            WeightedGraphError::WeightCountMismatch {
                weights: 1,
                edges: 2
            }
        ));
    }

    #[test]
    fn triples_keep_min_weight_on_duplicates() {
        let wg = WeightedGraph::from_weighted_edges(3, &[(0, 1, 9), (1, 0, 4), (1, 2, 2)]).unwrap();
        let e01 = wg.graph().edge_between(0, 1).unwrap();
        assert_eq!(wg.weight(e01), 4);
        assert_eq!(wg.total_weight(), 6);
    }

    #[test]
    fn random_weights_in_range() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let wg = WeightedGraph::with_random_weights(g, 10, &mut rng);
        assert!(wg.weights().iter().all(|&w| (1..=10).contains(&w)));
    }

    #[test]
    fn subset_weight_sums() {
        let wg = WeightedGraph::from_weighted_edges(4, &[(0, 1, 1), (1, 2, 2), (2, 3, 3)]).unwrap();
        let e = [
            wg.graph().edge_between(0, 1).unwrap(),
            wg.graph().edge_between(2, 3).unwrap(),
        ];
        assert_eq!(wg.subset_weight(&e), 4);
    }
}
