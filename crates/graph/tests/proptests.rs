//! Property-based tests for the graph substrate.

use lcs_graph::{
    bfs, bfs_distances, connected_components, double_sweep_lower_bound, exact_diameter,
    gnp_connected, kruskal, prim, single_bfs_upper_bound, stoer_wagner, verify_spanning_forest,
    BfsOptions, EdgeSubgraph, Graph, NodeId, UnionFind, WeightedGraph, UNREACHABLE,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy: an arbitrary simple graph given as (n, edge list).
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edge = (0..n as u32, 0..n as u32)
            .prop_filter("no self loop", |(u, v)| u != v)
            .prop_map(|(u, v)| (u, v));
        (Just(n), proptest::collection::vec(edge, 0..max_m))
    })
}

/// Strategy: a connected graph (random attachment tree + extra edges).
fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..max_n, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        gnp_connected(n, 0.08, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn csr_roundtrip_preserves_edges((n, edges) in arb_graph(40, 120)) {
        let g = Graph::from_edges(n, &edges).unwrap();
        // Every input edge must be present.
        for &(u, v) in &edges {
            prop_assert!(g.has_edge(u, v));
        }
        // Every graph edge must come from the input.
        let mut canon: Vec<(NodeId, NodeId)> = edges
            .iter()
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        canon.sort_unstable();
        canon.dedup();
        prop_assert_eq!(g.m(), canon.len());
        // Degree sum = 2m.
        let degsum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum, 2 * g.m());
    }

    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn bfs_distances_satisfy_edge_lipschitz((n, edges) in arb_graph(40, 120)) {
        let g = Graph::from_edges(n, &edges).unwrap();
        let d = bfs_distances(&g, 0);
        // Adjacent nodes differ by at most 1 when both reachable.
        for &(u, v) in g.edges() {
            let (du, dv) = (d[u as usize], d[v as usize]);
            if du != UNREACHABLE && dv != UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                // One endpoint reachable forces the other reachable.
                prop_assert_eq!(du, dv);
            }
        }
    }

    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn truncated_bfs_is_prefix_of_full((n, edges) in arb_graph(30, 90), depth in 0u32..6) {
        let g = Graph::from_edges(n, &edges).unwrap();
        let full = bfs(&g, &[0], &BfsOptions::default());
        let trunc = bfs(&g, &[0], &BfsOptions { max_depth: depth, node_filter: None });
        for v in 0..n {
            let fd = full.dist[v];
            if fd != UNREACHABLE && fd <= depth {
                prop_assert_eq!(trunc.dist[v], fd);
            } else {
                prop_assert_eq!(trunc.dist[v], UNREACHABLE);
            }
        }
        // Frontier flag is set iff some node lies strictly deeper.
        let deeper = full
            .dist
            .iter()
            .any(|&fd| fd != UNREACHABLE && fd > depth);
        prop_assert_eq!(trunc.truncated_with_frontier, deeper);
    }

    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn diameter_bounds_bracket_exact(g in arb_connected_graph(36)) {
        let exact = exact_diameter(&g).unwrap();
        for start in [0u32, (g.n() / 2) as u32] {
            let lo = double_sweep_lower_bound(&g, start).unwrap();
            let hi = single_bfs_upper_bound(&g, start).unwrap();
            prop_assert!(lo <= exact);
            prop_assert!(exact <= hi);
        }
    }

    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn components_partition_nodes((n, edges) in arb_graph(40, 60)) {
        let g = Graph::from_edges(n, &edges).unwrap();
        let c = connected_components(&g);
        prop_assert_eq!(c.sizes.iter().sum::<usize>(), n);
        // Edges never cross components.
        for &(u, v) in g.edges() {
            prop_assert_eq!(c.label[u as usize], c.label[v as usize]);
        }
        // Labels dense.
        for &l in &c.label {
            prop_assert!((l as usize) < c.num_components);
        }
    }

    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn union_find_matches_components((n, edges) in arb_graph(40, 60)) {
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut uf = UnionFind::new(n);
        for &(u, v) in g.edges() {
            uf.union(u, v);
        }
        let c = connected_components(&g);
        prop_assert_eq!(uf.num_sets(), c.num_components);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                prop_assert_eq!(
                    uf.same_set(u, v),
                    c.label[u as usize] == c.label[v as usize]
                );
            }
        }
    }

    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn kruskal_prim_agree_and_verify(seed in any::<u64>(), n in 4usize..40) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = gnp_connected(n, 0.15, &mut rng);
        let wg = WeightedGraph::with_random_weights(g, 50, &mut rng);
        let k = kruskal(&wg);
        let p = prim(&wg);
        prop_assert_eq!(k.weight, p.weight);
        prop_assert_eq!(&k.edges, &p.edges);
        prop_assert_eq!(verify_spanning_forest(&wg, &k.edges), Some(k.weight));
        prop_assert_eq!(k.edges.len(), n - 1);
    }

    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn mst_weight_is_minimal_under_edge_swap(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = gnp_connected(12, 0.3, &mut rng);
        let wg = WeightedGraph::with_random_weights(g, 30, &mut rng);
        let mst = kruskal(&wg);
        // Cycle property spot-check: adding any non-tree edge and removing
        // any tree edge never improves the weight (checked via total
        // weight of the alternative forest when it is spanning).
        for e in wg.graph().edge_ids() {
            if mst.edges.contains(&e) {
                continue;
            }
            for &t in &mst.edges {
                let mut alt: Vec<_> = mst.edges.iter().copied().filter(|&x| x != t).collect();
                alt.push(e);
                if let Some(w) = verify_spanning_forest(&wg, &alt) {
                    prop_assert!(w >= mst.weight);
                }
            }
        }
    }

    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn stoer_wagner_cut_is_no_larger_than_degree_cuts(seed in any::<u64>(), n in 3usize..16) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = gnp_connected(n, 0.3, &mut rng);
        let wg = WeightedGraph::with_random_weights(g, 20, &mut rng);
        let cut = stoer_wagner(&wg).unwrap();
        // Singleton cuts are upper bounds on the min cut.
        for v in wg.graph().nodes() {
            let deg_cut: u64 = wg
                .graph()
                .neighbors_with_edges(v)
                .map(|(_, e)| wg.weight(e))
                .sum();
            prop_assert!(cut.weight <= deg_cut);
        }
        prop_assert_eq!(lcs_graph::cut_weight(&wg, &cut.side), cut.weight);
    }

    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn edge_subgraph_distances_dominate_parent(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = gnp_connected(25, 0.12, &mut rng);
        // Take a random half of the edges.
        let edges: Vec<_> = g
            .edge_ids()
            .filter(|e| e.0 % 2 == seed as u32 % 2)
            .collect();
        let sub = EdgeSubgraph::new(&g, &edges, &[]);
        let parent_dist = bfs_distances(&g, 0);
        for v in g.nodes() {
            if let Some(d) = sub.distance(0, v) {
                prop_assert!(d >= parent_dist[v as usize]);
            }
        }
    }
}
