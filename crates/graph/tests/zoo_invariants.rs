//! Invariant tests for the generator zoo (`generators::zoo`):
//! connectivity, degree shape (d-regularity, power-law tail), the k-tree
//! treewidth certificate, a brute-force k-chordality spot-check, and
//! bit-identical determinism for equal seeds.

use lcs_graph::{
    grid_diagonals, is_connected, k_chordal, k_tree, power_law, random_regular, Graph, NodeId,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

// ---------------------------------------------------------------------
// Connectivity.

#[test]
fn zoo_families_are_connected() {
    for seed in [1u64, 2, 3] {
        assert!(is_connected(&grid_diagonals(7, 9)));
        assert!(is_connected(&k_tree(60, 3, &mut rng(seed))));
        assert!(is_connected(&power_law(150, 3, &mut rng(seed))));
        assert!(is_connected(&k_chordal(80, 5, &mut rng(seed))));
        // d-regular graphs are connected w.h.p. for d >= 3; these seeds
        // are fixed, so this is a deterministic assertion.
        assert!(is_connected(&random_regular(40, 4, &mut rng(seed))));
    }
}

// ---------------------------------------------------------------------
// Degree shape.

#[test]
fn random_regular_degree_exact() {
    for (n, d, seed) in [(30, 3, 7u64), (50, 4, 8), (64, 6, 9)] {
        let g = random_regular(n, d, &mut rng(seed));
        assert_eq!(g.n(), n);
        assert_eq!(g.m(), n * d / 2);
        for v in g.nodes() {
            assert_eq!(g.degree(v), d, "node {v} not {d}-regular");
        }
    }
}

#[test]
fn power_law_tail_dominates_mean() {
    let g = power_law(600, 3, &mut rng(11));
    let mean = 2.0 * g.m() as f64 / g.n() as f64;
    // Preferential attachment concentrates degree on early hubs: the max
    // degree is Θ(√(n·attach)), far above the ≈2·attach mean. A G(n, p)
    // graph of the same density would have max degree ≈ mean + 3√mean.
    assert!(
        g.max_degree() as f64 >= 4.0 * mean,
        "max degree {} vs mean {mean:.1}: no heavy tail",
        g.max_degree()
    );
    // ...and the tail is not a single outlier: the top 5 nodes all beat
    // twice the mean.
    let mut degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    degrees.sort_unstable_by(|a, b| b.cmp(a));
    assert!(degrees[4] as f64 >= 2.0 * mean);
}

// ---------------------------------------------------------------------
// k-tree treewidth certificate.

/// Checks the structural certificate that descending node ids are a
/// perfect elimination order of width exactly `k`: every node `v > k`
/// has exactly `k` lower-id neighbors and they form a clique.
fn assert_k_tree_certificate(g: &Graph, k: usize) {
    for v in g.nodes() {
        if (v as usize) <= k {
            continue;
        }
        let lower: Vec<NodeId> = g.neighbors(v).iter().copied().filter(|&u| u < v).collect();
        assert_eq!(
            lower.len(),
            k,
            "node {v} has {} lower neighbors",
            lower.len()
        );
        for (i, &a) in lower.iter().enumerate() {
            for &b in &lower[i + 1..] {
                assert!(g.has_edge(a, b), "bag of {v} misses edge ({a},{b})");
            }
        }
    }
    // Lower bound: the base clique K_{k+1} is present, so treewidth >= k.
    for a in 0..=k as NodeId {
        for b in (a + 1)..=k as NodeId {
            assert!(g.has_edge(a, b), "base clique misses ({a},{b})");
        }
    }
}

#[test]
fn k_tree_treewidth_certificate() {
    for (n, k, seed) in [(30, 2, 21u64), (50, 3, 22), (40, 5, 23)] {
        let g = k_tree(n, k, &mut rng(seed));
        assert_k_tree_certificate(&g, k);
    }
}

// ---------------------------------------------------------------------
// k-chordality spot-check (brute force).

/// Longest induced cycle by exhaustive DFS over induced paths anchored
/// at each cycle's minimum vertex. Only feasible for small graphs;
/// `cap` bounds the path length explored.
fn longest_induced_cycle(g: &Graph, cap: usize) -> usize {
    fn extend(
        g: &Graph,
        start: NodeId,
        path: &mut Vec<NodeId>,
        on_path: &mut [bool],
        best: &mut usize,
        cap: usize,
    ) {
        if path.len() == cap {
            return;
        }
        let last = *path.last().unwrap();
        for &w in g.neighbors(last) {
            // Canonical anchor: `start` is the smallest cycle vertex.
            if w <= start || on_path[w as usize] {
                continue;
            }
            // The path must stay induced: w may only touch `last` (its
            // predecessor) and possibly `start` (the closing edge).
            if path
                .iter()
                .any(|&p| p != last && p != start && g.has_edge(w, p))
            {
                continue;
            }
            let closes = g.has_edge(w, start);
            if closes && path.len() >= 2 {
                // start → ... → last → w → start, all chords excluded.
                *best = (*best).max(path.len() + 1);
            }
            // w can be an interior vertex only if it has no chord to
            // `start` — except the very first step, where the w–start
            // edge is the opening cycle edge, not a chord.
            if path.len() == 1 || !closes {
                on_path[w as usize] = true;
                path.push(w);
                extend(g, start, path, on_path, best, cap);
                path.pop();
                on_path[w as usize] = false;
            }
        }
    }

    let mut best = 0usize;
    let mut path: Vec<NodeId> = Vec::new();
    let mut on_path = vec![false; g.n()];
    for start in g.nodes() {
        path.clear();
        path.push(start);
        on_path.fill(false);
        on_path[start as usize] = true;
        extend(g, start, &mut path, &mut on_path, &mut best, cap);
    }
    best
}

#[test]
fn longest_induced_cycle_sanity() {
    // C_6 is its own (only) induced cycle.
    let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
    assert_eq!(longest_induced_cycle(&c6, 8), 6);
    // A chorded C_4 has only triangles.
    let diamond = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
    assert_eq!(longest_induced_cycle(&diamond, 8), 3);
}

#[test]
fn k_chordal_spot_check() {
    for (n, k, seed) in [(18, 4, 31u64), (20, 5, 32), (16, 6, 33)] {
        let g = k_chordal(n, k, &mut rng(seed));
        let longest = longest_induced_cycle(&g, k + 3);
        assert!(longest <= k, "induced cycle of length {longest} > k = {k}");
        // The first block is forced to a k-cycle, so the bound is tight.
        assert_eq!(longest, k, "expected an exact k-cycle block");
    }
}

#[test]
fn k_trees_are_3_chordal() {
    // k-trees are chordal: no induced cycle above a triangle.
    let g = k_tree(16, 3, &mut rng(41));
    assert_eq!(longest_induced_cycle(&g, 8), 3);
}

// ---------------------------------------------------------------------
// Determinism.

#[test]
fn equal_seeds_produce_bit_identical_graphs() {
    for seed in [0u64, 17, 99] {
        assert_eq!(k_tree(45, 3, &mut rng(seed)), k_tree(45, 3, &mut rng(seed)));
        assert_eq!(
            random_regular(36, 4, &mut rng(seed)),
            random_regular(36, 4, &mut rng(seed))
        );
        assert_eq!(
            power_law(120, 3, &mut rng(seed)),
            power_law(120, 3, &mut rng(seed))
        );
        assert_eq!(
            k_chordal(70, 6, &mut rng(seed)),
            k_chordal(70, 6, &mut rng(seed))
        );
    }
    // ...and the deterministic family is trivially reproducible.
    assert_eq!(grid_diagonals(5, 8), grid_diagonals(5, 8));
}
