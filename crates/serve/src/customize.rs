//! Customization: re-weight the edges of a frozen index **without
//! re-partitioning** — the CCH-style middle phase. The expensive,
//! weight-independent structure (partition, shortcut sets, aggregation
//! trees) is reused as-is from the [`ShortcutIndex`]; only the
//! weight-dependent tables (the per-tree weighted depths SSSP's tree
//! relaxation needs) are recomputed, which is a single pass over the
//! tree edges.

use lcs_graph::{NodeId, WeightedGraph};
use lcs_shortcut::{AggregationSetup, ShortcutIndex};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Customization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CustomizeError {
    /// `weights.len() != graph.m()` or a weight is invalid.
    BadWeights(String),
}

impl fmt::Display for CustomizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CustomizeError::BadWeights(why) => write!(f, "bad weights: {why}"),
        }
    }
}

impl std::error::Error for CustomizeError {}

/// A [`ShortcutIndex`] specialized to one weight assignment: the
/// shared frozen structure plus the recomputed weight-dependent
/// tables. Immutable after construction (`Sync`), so any number of
/// query workers can share one `Arc<CustomizedIndex>` read-only.
#[derive(Debug)]
pub struct CustomizedIndex {
    index: Arc<ShortcutIndex>,
    wg: WeightedGraph,
    setup: AggregationSetup,
    /// Weighted depth of every tree node from its tree root, one map
    /// per part tree — the table [`shortcut_sssp`]'s tree relaxation
    /// keys on, recomputed here at customization time.
    ///
    /// [`shortcut_sssp`]: lcs_apps::shortcut_sssp
    depths: Vec<HashMap<NodeId, u64>>,
}

impl CustomizedIndex {
    /// Customizes with the index's own baseline weights.
    pub fn baseline(index: Arc<ShortcutIndex>) -> Self {
        let weights = index.weights().to_vec();
        Self::with_weights(index, weights).expect("baseline weights are valid by construction")
    }

    /// Customizes with a fresh weight assignment (one weight per edge
    /// of the index graph). The partition, shortcuts, and trees are
    /// **not** rebuilt.
    ///
    /// # Errors
    ///
    /// [`CustomizeError::BadWeights`] when the weight vector does not
    /// match the graph.
    pub fn with_weights(
        index: Arc<ShortcutIndex>,
        weights: Vec<u64>,
    ) -> Result<Self, CustomizeError> {
        if weights.len() != index.graph().m() {
            return Err(CustomizeError::BadWeights(format!(
                "{} weights for {} edges",
                weights.len(),
                index.graph().m()
            )));
        }
        let wg = WeightedGraph::new(index.graph().clone(), weights)
            .map_err(|e| CustomizeError::BadWeights(e.to_string()))?;
        let setup = index.aggregation_setup();
        let depths = weighted_depths(&wg, &setup);
        Ok(CustomizedIndex {
            index,
            wg,
            setup,
            depths,
        })
    }

    /// The underlying frozen index.
    pub fn index(&self) -> &Arc<ShortcutIndex> {
        &self.index
    }

    /// The graph with the active (customized) weights.
    pub fn weighted_graph(&self) -> &WeightedGraph {
        &self.wg
    }

    /// The frozen aggregation trees.
    pub fn setup(&self) -> &AggregationSetup {
        &self.setup
    }

    /// The recomputed per-tree weighted-depth tables.
    pub fn depths(&self) -> &[HashMap<NodeId, u64>] {
        &self.depths
    }
}

/// Weighted depth of every tree node from the tree root, per part tree
/// — identical to the table `lcs_apps::shortcut_sssp` derives
/// internally (the differential suite holds the two byte-identical).
fn weighted_depths(wg: &WeightedGraph, setup: &AggregationSetup) -> Vec<HashMap<NodeId, u64>> {
    let g = wg.graph();
    setup
        .trees
        .iter()
        .map(|tree| {
            let mut children: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
            for &(v, parent) in &tree.members {
                if let Some(p) = parent {
                    children.entry(p).or_default().push(v);
                }
            }
            let mut depth: HashMap<NodeId, u64> = HashMap::new();
            depth.insert(tree.root, 0);
            let mut queue = std::collections::VecDeque::from([tree.root]);
            while let Some(p) = queue.pop_front() {
                let dp = depth[&p];
                for &v in children.get(&p).map(|c| c.as_slice()).unwrap_or(&[]) {
                    let e = g.edge_between(p, v).expect("tree edge");
                    depth.insert(v, dp + wg.weight(e));
                    queue.push_back(v);
                }
            }
            depth
        })
        .collect()
}
