//! # lcs-serve
//!
//! The **preprocess-once, query-many** service layer over a frozen
//! [`ShortcutIndex`](lcs_shortcut::ShortcutIndex) — the architecture
//! rust_road_router proves out for CCH, transplanted to low-congestion
//! shortcuts: split expensive *construction* (any registered
//! [`ShortcutBuilder`](lcs_shortcut::ShortcutBuilder) backend, or the
//! full distributed pipeline) from cheap *customization* (re-weighting
//! edges without re-partitioning) from *live queries* (SSSP, MST,
//! partwise aggregation, min-cut estimates), so one preprocessing run
//! amortizes across many requests.
//!
//! ## Lifecycle
//!
//! ```text
//! build      lcs_core::build_index / build_index_distributed  (seconds)
//!   ↓ Arc<ShortcutIndex>                 frozen, serializable, shared
//! customize  CustomizedIndex::with_weights                 (millis)
//!   ↓ Arc<CustomizedIndex>     weight-dependent tables recomputed
//! query      ServePool::serve                      (micros–millis)
//! ```
//!
//! Queries are answered by an [`IndexedSession`] pool: worker threads
//! share the customized index read-only (`Arc`), pull from a batch of
//! mixed [`Query`] kinds, and produce results (and a batch
//! fingerprint) that are **independent of the pool size** — every
//! query's randomness comes from a deterministic per-query seed, and
//! results are reassembled in submission order.
//!
//! ## Example
//!
//! ```
//! use lcs_core::{build_index, IndexBuildConfig, KoganParter};
//! use lcs_graph::{HighwayGraph, HighwayParams, WeightedGraph};
//! use lcs_serve::{Query, ServePool};
//! use lcs_shortcut::Partition;
//! use std::sync::Arc;
//!
//! let hw = HighwayGraph::new(HighwayParams {
//!     num_paths: 3, path_len: 10, diameter: 4,
//! }).unwrap();
//! let g = hw.graph().clone();
//! let p = Partition::new(&g, hw.path_parts()).unwrap();
//! let weights: Vec<u64> = (0..g.m() as u64).map(|e| e % 9 + 1).collect();
//! let wg = WeightedGraph::new(g, weights).unwrap();
//! let backend = KoganParter { diameter: Some(4), ..KoganParter::default() };
//! let index = Arc::new(build_index(&wg, &p, &backend, &IndexBuildConfig::default()));
//!
//! let pool = ServePool::new(index, 2);
//! let batch = pool.serve(&[Query::sssp(0), Query::Mst], 7);
//! assert_eq!(batch.results.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod customize;
pub mod pool;
pub mod query;

pub use customize::{CustomizeError, CustomizedIndex};
pub use pool::{per_query_seed, IndexedSession, ServePool, ServedBatch};
pub use query::{aggregate_value, min_cut_config, mst_config, Query, QueryResult};

/// FNV-1a 64-bit folder for result fingerprints (integer results only,
/// never timings — the same discipline as the bench gates).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn u64(&mut self, x: u64) -> &mut Self {
        for &b in &x.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}
