//! The concurrent query front-end: an [`IndexedSession`] pool sharing
//! one customized index read-only across worker threads.
//!
//! Determinism contract: a batch's results — and therefore its
//! fingerprint — depend only on `(customized index, queries,
//! batch_seed)`. Worker count and scheduling are invisible: every
//! query's randomness comes from [`per_query_seed`], workers pull
//! query *indices* from a shared cursor, and results are reassembled
//! in submission order. CI gates on exactly this (pool sizes {1,4}
//! must fingerprint identically in `serve_throughput`).

use crate::customize::CustomizedIndex;
use crate::query::{answer, Query, QueryResult};
use crate::Fnv;
use lcs_core::splitmix64;
use lcs_shortcut::ShortcutIndex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The deterministic seed of the `i`-th query of a batch.
pub fn per_query_seed(batch_seed: u64, i: usize) -> u64 {
    splitmix64(batch_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One worker's handle on the shared customized index. Sessions are
/// cheap (`Arc` clone) and answer queries independently; all of them
/// read the same frozen structure.
#[derive(Debug, Clone)]
pub struct IndexedSession {
    cx: Arc<CustomizedIndex>,
}

impl IndexedSession {
    /// Answers one query under an explicit seed.
    pub fn answer(&self, query: &Query, seed: u64) -> QueryResult {
        answer(&self.cx, query, seed)
    }

    /// The customized index this session reads.
    pub fn customized(&self) -> &Arc<CustomizedIndex> {
        &self.cx
    }
}

/// A completed batch: results in submission order plus the batch
/// fingerprint (fold of every result's fingerprint, in order).
#[derive(Debug, Clone)]
pub struct ServedBatch {
    /// One result per query, in submission order.
    pub results: Vec<QueryResult>,
    /// FNV-1a fold of all result fingerprints — pool-size invariant.
    pub fingerprint: u64,
}

/// A fixed-size pool of [`IndexedSession`] workers over one customized
/// index.
#[derive(Debug)]
pub struct ServePool {
    cx: Arc<CustomizedIndex>,
    workers: usize,
}

impl ServePool {
    /// Pool over the index's baseline weights. `workers == 0` is
    /// clamped to 1.
    pub fn new(index: Arc<ShortcutIndex>, workers: usize) -> Self {
        Self::with_customization(Arc::new(CustomizedIndex::baseline(index)), workers)
    }

    /// Pool over an explicit customization (e.g. re-weighted edges).
    pub fn with_customization(cx: Arc<CustomizedIndex>, workers: usize) -> Self {
        ServePool {
            cx,
            workers: workers.max(1),
        }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// A fresh session on this pool's customized index.
    pub fn session(&self) -> IndexedSession {
        IndexedSession {
            cx: Arc::clone(&self.cx),
        }
    }

    /// Serves a batch of mixed queries. Results (and the batch
    /// fingerprint) are independent of the pool size.
    pub fn serve(&self, queries: &[Query], batch_seed: u64) -> ServedBatch {
        let n = queries.len();
        let workers = self.workers.min(n.max(1));
        let mut results: Vec<QueryResult> = if workers <= 1 {
            let session = self.session();
            queries
                .iter()
                .enumerate()
                .map(|(i, q)| session.answer(q, per_query_seed(batch_seed, i)))
                .collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let collected: Mutex<Vec<(usize, QueryResult)>> = Mutex::new(Vec::with_capacity(n));
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let session = self.session();
                    let cursor = &cursor;
                    let collected = &collected;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, QueryResult)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((
                                i,
                                session.answer(&queries[i], per_query_seed(batch_seed, i)),
                            ));
                        }
                        collected.lock().expect("no poisoned workers").extend(local);
                    });
                }
            });
            let mut got = collected.into_inner().expect("workers joined");
            got.sort_by_key(|&(i, _)| i);
            got.into_iter().map(|(_, r)| r).collect()
        };
        let mut f = Fnv::new();
        for r in &results {
            f.u64(r.fingerprint());
        }
        let fingerprint = f.finish();
        results.shrink_to_fit();
        ServedBatch {
            results,
            fingerprint,
        }
    }
}
