//! Query kinds and their execution against a [`CustomizedIndex`].
//!
//! Every kind is deterministic in `(customized index, query, seed)` —
//! the seed is the *only* randomness a query may consume — so batches
//! reproduce bit for bit regardless of which pool worker answers which
//! query. The differential suite (`tests/differential.rs`) holds each
//! kind byte-identical to the corresponding one-shot pipeline:
//! [`lcs_apps::shortcut_sssp`], [`lcs_apps::mst_via_shortcuts`],
//! [`AggregationSetup`](lcs_shortcut::AggregationSetup) aggregation,
//! and [`lcs_apps::approximate_min_cut`].

use crate::customize::CustomizedIndex;
use crate::Fnv;
use lcs_apps::{approximate_min_cut, mst_via_shortcuts, MinCutConfig, MstConfig};
use lcs_congest::AggOp;
use lcs_core::splitmix64;
use lcs_graph::{EdgeId, NodeId, W_UNREACHABLE};

/// One request against the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// Single-source shortest paths (upper bounds) from `source` via
    /// interleaved Bellman–Ford + partwise tree relaxations.
    Sssp {
        /// The source node.
        source: NodeId,
        /// Outer-iteration cap (pass ≥ `n` for the exact fixpoint).
        max_iterations: u32,
    },
    /// Minimum spanning tree via Boruvka over the index shortcuts.
    Mst,
    /// One partwise aggregation sweep: every part folds a
    /// seed-derived value per member under `op`.
    Aggregate {
        /// The fold operator.
        op: AggOp,
    },
    /// `(1+ε)`-approximate min cut (tree packing on skeletons).
    MinCut,
}

impl Query {
    /// SSSP from `source` with a convergence-sized iteration cap.
    pub fn sssp(source: NodeId) -> Self {
        Query::Sssp {
            source,
            max_iterations: 4096,
        }
    }
}

/// A query's answer. Integer payloads only, so results fingerprint and
/// compare exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Answer to [`Query::Sssp`].
    Sssp {
        /// Distance upper bounds per node.
        dist: Vec<u64>,
        /// Outer iterations until fixpoint (or cap).
        iterations: u32,
        /// Accounted rounds (Bellman–Ford sweeps + scheduled
        /// aggregations), same accounting as the one-shot pipeline.
        total_rounds: u64,
    },
    /// Answer to [`Query::Mst`].
    Mst {
        /// MST/MSF edges, sorted by id.
        edges: Vec<EdgeId>,
        /// Total tree weight.
        weight: u64,
        /// Boruvka phases used.
        phases: u32,
    },
    /// Answer to [`Query::Aggregate`].
    Aggregate {
        /// The per-part fold results, in part order.
        per_part: Vec<u64>,
    },
    /// Answer to [`Query::MinCut`].
    MinCut {
        /// Best cut weight found.
        weight: u64,
        /// One side of the cut, sorted.
        side: Vec<NodeId>,
        /// Trees packed across estimate rounds.
        trees_packed: u64,
    },
    /// The query could not be answered (e.g. MST encoding overflow).
    Failed(String),
}

impl QueryResult {
    /// FNV-1a fingerprint of the integer payload (stable across hosts
    /// and pool sizes).
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fnv::new();
        match self {
            QueryResult::Sssp {
                dist,
                iterations,
                total_rounds,
            } => {
                f.u64(1);
                for &d in dist {
                    f.u64(d);
                }
                f.u64(u64::from(*iterations)).u64(*total_rounds);
            }
            QueryResult::Mst {
                edges,
                weight,
                phases,
            } => {
                f.u64(2);
                for e in edges {
                    f.u64(u64::from(e.0));
                }
                f.u64(*weight).u64(u64::from(*phases));
            }
            QueryResult::Aggregate { per_part } => {
                f.u64(3);
                for &v in per_part {
                    f.u64(v);
                }
            }
            QueryResult::MinCut {
                weight,
                side,
                trees_packed,
            } => {
                f.u64(4);
                f.u64(*weight);
                for &v in side {
                    f.u64(u64::from(v));
                }
                f.u64(*trees_packed);
            }
            QueryResult::Failed(why) => {
                f.u64(5);
                for &b in why.as_bytes() {
                    f.u64(u64::from(b));
                }
            }
        }
        f.finish()
    }
}

/// The deterministic per-member value an [`Query::Aggregate`] folds:
/// a seed-derived pseudo-random 16-bit payload (small enough that
/// `Sum` over any part cannot overflow). Public so differential tests
/// can replay the identical workload through the one-shot pipeline.
pub fn aggregate_value(seed: u64, part: usize, v: NodeId) -> u64 {
    splitmix64(seed ^ ((part as u64) << 32) ^ u64::from(v)) & 0xFFFF
}

/// Answers one query against the customized index, deterministically
/// in `(cx, query, seed)`.
pub(crate) fn answer(cx: &CustomizedIndex, query: &Query, seed: u64) -> QueryResult {
    match *query {
        Query::Sssp {
            source,
            max_iterations,
        } => sssp(cx, source, max_iterations),
        Query::Mst => mst(cx, seed),
        Query::Aggregate { op } => aggregate(cx, op, seed),
        Query::MinCut => min_cut(cx, seed),
    }
}

/// The interleaved Bellman–Ford + partwise tree relaxation, driven by
/// the **customized tables** (frozen trees + recomputed weighted
/// depths) instead of rebuilding them per call. Distances, iteration
/// count, and round accounting are byte-identical to
/// [`lcs_apps::shortcut_sssp`] on the same inputs — the differential
/// suite pins this.
fn sssp(cx: &CustomizedIndex, source: NodeId, max_iterations: u32) -> QueryResult {
    let wg = cx.weighted_graph();
    let g = wg.graph();
    let n = g.n();
    if source as usize >= n {
        return QueryResult::Failed(format!("sssp source {source} out of range (n={n})"));
    }
    let setup = cx.setup();
    let depths = cx.depths();
    let partition = cx.index().partition();
    let agg_rounds = setup.schedule_cost().rounds_no_precompute(n.max(2)) * 2;

    let mut dist = vec![W_UNREACHABLE; n];
    dist[source as usize] = 0;
    let mut total_rounds = 0u64;
    let mut iterations = 0u32;
    loop {
        iterations += 1;
        let mut changed = false;
        // (a) one Bellman-Ford sweep: 1 round.
        total_rounds += 1;
        let snapshot = dist.clone();
        for e in g.edge_ids() {
            let (u, v) = g.edge_endpoints(e);
            let w = wg.weight(e);
            if snapshot[u as usize] != W_UNREACHABLE && snapshot[u as usize] + w < dist[v as usize]
            {
                dist[v as usize] = snapshot[u as usize] + w;
                changed = true;
            }
            if snapshot[v as usize] != W_UNREACHABLE && snapshot[v as usize] + w < dist[u as usize]
            {
                dist[u as usize] = snapshot[v as usize] + w;
                changed = true;
            }
        }
        // (b) partwise tree relaxation over the frozen trees.
        total_rounds += agg_rounds;
        for (tree, depth) in setup.trees.iter().zip(depths.iter()) {
            let mut a = W_UNREACHABLE;
            for &(v, _) in &tree.members {
                if partition.part_of(v) == Some(tree.part as u32)
                    && dist[v as usize] != W_UNREACHABLE
                {
                    a = a.min(dist[v as usize] + depth[&v]);
                }
            }
            if a == W_UNREACHABLE {
                continue;
            }
            for &(v, _) in &tree.members {
                if partition.part_of(v) == Some(tree.part as u32) {
                    let cand = a + depth[&v];
                    if cand < dist[v as usize] {
                        dist[v as usize] = cand;
                        changed = true;
                    }
                }
            }
        }
        if !changed || iterations >= max_iterations {
            break;
        }
    }
    QueryResult::Sssp {
        dist,
        iterations,
        total_rounds,
    }
}

/// The MST configuration an index-served [`Query::Mst`] (and the
/// min-cut's MST subroutine) runs under — exposed so differential
/// tests can run the identical one-shot pipeline.
pub fn mst_config(cx: &CustomizedIndex, seed: u64) -> MstConfig {
    MstConfig {
        seed,
        diameter: cx.index().meta().diameter,
        ..MstConfig::default()
    }
}

fn mst(cx: &CustomizedIndex, seed: u64) -> QueryResult {
    match mst_via_shortcuts(cx.weighted_graph(), &mst_config(cx, seed)) {
        Ok(out) => QueryResult::Mst {
            edges: out.edges,
            weight: out.weight,
            phases: out.phases,
        },
        Err(e) => QueryResult::Failed(format!("mst: {e}")),
    }
}

fn aggregate(cx: &CustomizedIndex, op: AggOp, seed: u64) -> QueryResult {
    let partition = cx.index().partition();
    let value = |v: NodeId, part: usize| -> u64 {
        if partition.part_of(v) == Some(part as u32) {
            aggregate_value(seed, part, v)
        } else {
            op.identity()
        }
    };
    QueryResult::Aggregate {
        per_part: cx.setup().aggregate_centralized(op, &value),
    }
}

/// The min-cut configuration an index-served [`Query::MinCut`] runs
/// under — exposed for the differential suite.
pub fn min_cut_config(cx: &CustomizedIndex, seed: u64) -> MinCutConfig {
    MinCutConfig {
        seed,
        mst: mst_config(cx, seed),
        ..MinCutConfig::default()
    }
}

fn min_cut(cx: &CustomizedIndex, seed: u64) -> QueryResult {
    match approximate_min_cut(cx.weighted_graph(), &min_cut_config(cx, seed)) {
        Ok(out) => {
            let mut side = out.side;
            side.sort_unstable();
            QueryResult::MinCut {
                weight: out.weight,
                side,
                trees_packed: out.trees_packed as u64,
            }
        }
        Err(e) => QueryResult::Failed(format!("min-cut: {e}")),
    }
}
