//! The service layer's correctness anchor: index-served answers must
//! be **byte-identical** to the one-shot pipeline on the same graph,
//! seed, and shard count.
//!
//! * The index is built by the same distributed construction
//!   (`distributed_shortcuts`) the one-shot path runs, at shard counts
//!   {1, 4} — the serialized index bytes must not depend on the shard
//!   count.
//! * Served SSSP / MST / aggregation / min-cut answers are compared
//!   field-for-field against `shortcut_sssp`, `mst_via_shortcuts`,
//!   `AggregationSetup` aggregation (centralized *and* engine-simulated
//!   at shards {1, 4}), and `approximate_min_cut`.
//! * Pool sizes {1, 4} must produce identical results and batch
//!   fingerprints.

use lcs_apps::{approximate_min_cut, mst_via_shortcuts, shortcut_sssp};
use lcs_congest::{AggOp, SimConfig};
use lcs_core::{build_index_distributed, DistributedConfig};
use lcs_graph::{kruskal, HighwayGraph, HighwayParams, NodeId, WeightedGraph};
use lcs_serve::{
    aggregate_value, min_cut_config, mst_config, per_query_seed, CustomizedIndex, Query, ServePool,
};
use lcs_shortcut::{AggregationSetup, Partition, ShortcutIndex};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn fixture() -> (WeightedGraph, Partition) {
    let hw = HighwayGraph::new(HighwayParams {
        num_paths: 4,
        path_len: 12,
        diameter: 4,
    })
    .unwrap();
    let g = hw.graph().clone();
    let p = Partition::new(&g, hw.path_parts()).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED);
    (WeightedGraph::with_random_weights(g, 100, &mut rng), p)
}

fn build(wg: &WeightedGraph, p: &Partition, shards: usize) -> ShortcutIndex {
    let cfg = DistributedConfig {
        known_diameter: Some(4),
        shards,
        ..DistributedConfig::default()
    };
    build_index_distributed(wg.graph(), wg.weights(), p, &cfg)
        .expect("highway fixture builds")
        .0
}

#[test]
fn index_bytes_are_shard_count_invariant() {
    let (wg, p) = fixture();
    let bytes1 = build(&wg, &p, 1).to_bytes();
    let bytes4 = build(&wg, &p, 4).to_bytes();
    assert_eq!(bytes1, bytes4, "index must not depend on engine shards");
}

#[test]
fn served_sssp_is_byte_identical_to_one_shot() {
    let (wg, p) = fixture();
    let idx = Arc::new(build(&wg, &p, 1));
    let shortcuts = idx.shortcuts().clone();
    let pool = ServePool::new(Arc::clone(&idx), 2);

    for source in [0 as NodeId, 7, 30] {
        let batch = pool.serve(
            &[Query::Sssp {
                source,
                max_iterations: 4096,
            }],
            9,
        );
        let one_shot = shortcut_sssp(&wg, &p, &shortcuts, source, 4096);
        match &batch.results[0] {
            lcs_serve::QueryResult::Sssp {
                dist,
                iterations,
                total_rounds,
            } => {
                assert_eq!(dist, &one_shot.dist, "source {source}");
                assert_eq!(*iterations, one_shot.iterations, "source {source}");
                assert_eq!(*total_rounds, one_shot.total_rounds, "source {source}");
            }
            other => panic!("expected an SSSP answer, got {other:?}"),
        }
    }
}

#[test]
fn served_mst_is_byte_identical_to_one_shot_and_kruskal() {
    let (wg, p) = fixture();
    let idx = Arc::new(build(&wg, &p, 1));
    let cx = CustomizedIndex::baseline(Arc::clone(&idx));
    let pool = ServePool::new(Arc::clone(&idx), 2);

    let batch_seed = 0xBEEF;
    let batch = pool.serve(&[Query::Mst], batch_seed);
    let seed = per_query_seed(batch_seed, 0);
    let one_shot = mst_via_shortcuts(&wg, &mst_config(&cx, seed)).unwrap();
    match &batch.results[0] {
        lcs_serve::QueryResult::Mst {
            edges,
            weight,
            phases,
        } => {
            assert_eq!(edges, &one_shot.edges);
            assert_eq!(*weight, one_shot.weight);
            assert_eq!(*phases, one_shot.phases);
            // And the unique MST equals the Kruskal reference.
            let k = kruskal(&wg);
            assert_eq!(edges, &k.edges);
            assert_eq!(*weight, k.weight);
        }
        other => panic!("expected an MST answer, got {other:?}"),
    }
}

#[test]
fn served_aggregation_matches_one_shot_at_multiple_shard_counts() {
    let (wg, p) = fixture();
    let idx = Arc::new(build(&wg, &p, 1));
    let pool = ServePool::new(Arc::clone(&idx), 2);

    let batch_seed = 0xA66;
    let batch = pool.serve(&[Query::Aggregate { op: AggOp::Sum }], batch_seed);
    let seed = per_query_seed(batch_seed, 0);
    let per_part = match &batch.results[0] {
        lcs_serve::QueryResult::Aggregate { per_part } => per_part.clone(),
        other => panic!("expected an aggregation answer, got {other:?}"),
    };

    // One-shot: rebuild the trees from scratch and fold the identical
    // seed-derived workload, centralized…
    let setup = AggregationSetup::build(wg.graph(), &p, idx.shortcuts());
    let value = |v: NodeId, part: usize| -> u64 {
        if p.part_of(v) == Some(part as u32) {
            aggregate_value(seed, part, v)
        } else {
            AggOp::Sum.identity()
        }
    };
    assert_eq!(per_part, setup.aggregate_centralized(AggOp::Sum, &value));

    // …and through the CONGEST engine at shard counts {1, 4}.
    for shards in [1usize, 4] {
        let cfg = SimConfig {
            shards,
            ..SimConfig::default()
        };
        let (roots, _) = setup
            .aggregate_simulated(wg.graph(), AggOp::Sum, &value, true, &cfg)
            .unwrap();
        for (i, &served) in per_part.iter().enumerate() {
            assert_eq!(roots[i], Some(served), "part {i} at {shards} shards");
        }
    }
}

#[test]
fn served_min_cut_is_byte_identical_to_one_shot() {
    let (wg, p) = fixture();
    let idx = Arc::new(build(&wg, &p, 1));
    let cx = CustomizedIndex::baseline(Arc::clone(&idx));
    let pool = ServePool::new(Arc::clone(&idx), 2);

    let batch_seed = 0xC07;
    let batch = pool.serve(&[Query::MinCut], batch_seed);
    let seed = per_query_seed(batch_seed, 0);
    let one_shot = approximate_min_cut(&wg, &min_cut_config(&cx, seed)).unwrap();
    match &batch.results[0] {
        lcs_serve::QueryResult::MinCut {
            weight,
            side,
            trees_packed,
        } => {
            assert_eq!(*weight, one_shot.weight);
            let mut expect = one_shot.side.clone();
            expect.sort_unstable();
            assert_eq!(side, &expect);
            assert_eq!(*trees_packed, one_shot.trees_packed as u64);
        }
        other => panic!("expected a min-cut answer, got {other:?}"),
    }
}

#[test]
fn pool_size_does_not_change_results_or_fingerprint() {
    let (wg, p) = fixture();
    let idx = Arc::new(build(&wg, &p, 1));
    let queries: Vec<Query> = (0..12)
        .map(|i| match i % 4 {
            0 => Query::sssp((i * 5) as NodeId),
            1 => Query::Mst,
            2 => Query::Aggregate {
                op: if i % 8 == 2 { AggOp::Sum } else { AggOp::Max },
            },
            _ => Query::MinCut,
        })
        .collect();

    let solo = ServePool::new(Arc::clone(&idx), 1).serve(&queries, 0x7001);
    let quad = ServePool::new(Arc::clone(&idx), 4).serve(&queries, 0x7001);
    assert_eq!(solo.results, quad.results);
    assert_eq!(solo.fingerprint, quad.fingerprint);
}

#[test]
fn customization_reweights_without_rebuilding() {
    let (wg, p) = fixture();
    let idx = Arc::new(build(&wg, &p, 1));
    let frozen_bytes = idx.to_bytes();

    // Re-weight every edge; the structure (partition, shortcuts,
    // trees) is reused untouched.
    let new_weights: Vec<u64> = (0..wg.graph().m() as u64).map(|e| e * 3 % 41 + 1).collect();
    let cx =
        Arc::new(CustomizedIndex::with_weights(Arc::clone(&idx), new_weights.clone()).unwrap());
    let pool = ServePool::with_customization(Arc::clone(&cx), 2);
    let batch = pool.serve(&[Query::sssp(3)], 1);

    // One-shot on a freshly weighted graph with the same frozen
    // shortcuts: identical answers.
    let new_wg = WeightedGraph::new(wg.graph().clone(), new_weights).unwrap();
    let one_shot = shortcut_sssp(&new_wg, &p, idx.shortcuts(), 3, 4096);
    match &batch.results[0] {
        lcs_serve::QueryResult::Sssp { dist, .. } => assert_eq!(dist, &one_shot.dist),
        other => panic!("expected an SSSP answer, got {other:?}"),
    }
    assert_eq!(
        idx.to_bytes(),
        frozen_bytes,
        "customization never mutates the index"
    );
}
