//! Tier-2 property tests of the service layer: on random zoo graphs,
//! frozen indexes round-trip through bytes and the pool's determinism
//! contract holds for arbitrary pool sizes and batch seeds.

use lcs_congest::AggOp;
use lcs_core::{build_index, IndexBuildConfig, KoganParter};
use lcs_graph::{gnp_connected, k_tree, power_law, NodeId, WeightedGraph};
use lcs_serve::{Query, ServePool};
use lcs_shortcut::{Partition, ShortcutIndex};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Build → freeze → serialize → deserialize → serve: the reloaded
    /// index answers every query identically to the in-memory one, and
    /// the answers are pool-size invariant.
    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn reloaded_index_serves_identically(
        seed in any::<u64>(),
        n in 8usize..32,
        k in 2usize..5,
        family in 0usize..3,
        batch_seed in any::<u64>(),
        pool_b in 2usize..5,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = match family {
            0 => gnp_connected(n, 0.15, &mut rng),
            1 => k_tree(n, 2, &mut rng),
            _ => power_law(n, 2, &mut rng),
        };
        let p = Partition::bfs_balls(&g, k.min(g.n()), &mut rng);
        let weights: Vec<u64> = (0..g.m() as u64).map(|e| e * 7 % 23 + 1).collect();
        let wg = WeightedGraph::new(g, weights).unwrap();
        let backend = KoganParter::default();
        let idx = Arc::new(build_index(
            &wg,
            &p,
            &backend,
            &IndexBuildConfig { seed, ..IndexBuildConfig::default() },
        ));

        let reloaded = Arc::new(ShortcutIndex::from_bytes(&idx.to_bytes()).unwrap());
        prop_assert_eq!(&*reloaded, &*idx);

        let queries: Vec<Query> = (0..6)
            .map(|i| match i % 3 {
                0 => Query::sssp((i % wg.graph().n()) as NodeId),
                1 => Query::Aggregate { op: AggOp::Sum },
                _ => Query::Mst,
            })
            .collect();
        let a = ServePool::new(idx, 1).serve(&queries, batch_seed);
        let b = ServePool::new(reloaded, pool_b).serve(&queries, batch_seed);
        prop_assert_eq!(a.results, b.results);
        prop_assert_eq!(a.fingerprint, b.fingerprint);
    }
}
