//! Serialization contract of a **distributed-built** index (the unit
//! tests in `lcs_shortcut::index` cover hand-assembled indexes): save
//! → load is byte-exact, and every corruption mode — truncation at any
//! prefix, bad magic, wrong version, bit flips — surfaces as a typed
//! [`IndexError`], never a panic.

use lcs_core::{build_index_distributed, DistributedConfig};
use lcs_graph::{HighwayGraph, HighwayParams, WeightedGraph};
use lcs_shortcut::{IndexError, Partition, ShortcutIndex, INDEX_FORMAT_VERSION};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn built_index() -> ShortcutIndex {
    let hw = HighwayGraph::new(HighwayParams {
        num_paths: 3,
        path_len: 10,
        diameter: 4,
    })
    .unwrap();
    let g = hw.graph().clone();
    let p = Partition::new(&g, hw.path_parts()).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(0xD15C);
    let wg = WeightedGraph::with_random_weights(g, 50, &mut rng);
    let cfg = DistributedConfig {
        known_diameter: Some(4),
        ..DistributedConfig::default()
    };
    build_index_distributed(wg.graph(), wg.weights(), &p, &cfg)
        .unwrap()
        .0
}

#[test]
fn save_load_roundtrip_is_byte_exact() {
    let idx = built_index();
    let path = std::env::temp_dir().join(format!("lcs_serve_ser_{}.lcsidx", std::process::id()));
    idx.save(&path).unwrap();
    let loaded = ShortcutIndex::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, idx);
    assert_eq!(loaded.to_bytes(), idx.to_bytes());
    // The reloaded index carries the construction metadata through.
    assert_eq!(loaded.meta().backend, "kogan_parter_distributed");
    assert!(loaded.meta().certificate.is_some());
}

#[test]
fn every_truncation_prefix_is_a_typed_error() {
    let bytes = built_index().to_bytes();
    // Sweep every prefix length (stride keeps the test fast; the small
    // lengths where the header lives are covered exhaustively).
    let mut cuts: Vec<usize> = (0..64.min(bytes.len())).collect();
    cuts.extend((64..bytes.len()).step_by(97));
    for cut in cuts {
        match ShortcutIndex::from_bytes(&bytes[..cut]) {
            Err(_) => {}
            Ok(_) => panic!("truncation to {cut} bytes decoded successfully"),
        }
    }
    // A clean cut mid-payload reports Truncated specifically, not a
    // checksum mismatch.
    assert!(matches!(
        ShortcutIndex::from_bytes(&bytes[..bytes.len() / 2]),
        Err(IndexError::Truncated)
    ));
}

#[test]
fn bad_magic_and_version_are_typed_errors() {
    let bytes = built_index().to_bytes();

    let mut magic = bytes.clone();
    magic[0] ^= 0xFF;
    assert!(matches!(
        ShortcutIndex::from_bytes(&magic),
        Err(IndexError::BadMagic)
    ));

    let mut version = bytes.clone();
    let bumped = INDEX_FORMAT_VERSION + 41;
    version[8..12].copy_from_slice(&bumped.to_le_bytes());
    match ShortcutIndex::from_bytes(&version) {
        Err(IndexError::UnsupportedVersion { found }) => assert_eq!(found, bumped),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn payload_bit_flips_fail_the_checksum() {
    let bytes = built_index().to_bytes();
    // Flip one bit in several payload positions; all must be caught by
    // the checksum (or a stricter structural error), never accepted.
    for pos in [
        bytes.len() / 4,
        bytes.len() / 3,
        bytes.len() / 2,
        2 * bytes.len() / 3,
    ] {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x10;
        match ShortcutIndex::from_bytes(&corrupt) {
            Ok(_) => panic!("bit flip at {pos} was accepted"),
            Err(IndexError::BadChecksum { stored, computed }) => {
                assert_ne!(stored, computed);
            }
            Err(_) => {} // structural errors are also acceptable
        }
    }
}
