//! Session-path vs index-path differential: the engine-simulated
//! partwise aggregation (a `MultiAggregate` bundle through a CONGEST
//! `Session`) must agree with the index-served answer for the same
//! seed-derived workload, and the session path's `RunStats`
//! fingerprints must be identical across engine shard counts {1, 4}.
//!
//! Together with `congest/tests/session_pinning.rs` this replaces the
//! retired deprecated-wrapper suite: the session path is pinned
//! against the engine there, and against the service layer here.

use lcs_congest::{AggOp, SimConfig};
use lcs_core::{build_index_distributed, DistributedConfig};
use lcs_graph::{HighwayGraph, HighwayParams, NodeId, WeightedGraph};
use lcs_serve::{aggregate_value, per_query_seed, Query, ServePool};
use lcs_shortcut::Partition;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

#[test]
fn session_aggregation_agrees_with_index_path_at_shards_1_and_4() {
    let hw = HighwayGraph::new(HighwayParams {
        num_paths: 4,
        path_len: 12,
        diameter: 4,
    })
    .unwrap();
    let g = hw.graph().clone();
    let p = Partition::new(&g, hw.path_parts()).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(0x5E55);
    let wg = WeightedGraph::with_random_weights(g, 100, &mut rng);
    let cfg = DistributedConfig {
        known_diameter: Some(4),
        ..DistributedConfig::default()
    };
    let (index, _) = build_index_distributed(wg.graph(), wg.weights(), &p, &cfg).expect("build");
    let index = Arc::new(index);

    for op in [AggOp::Sum, AggOp::Min, AggOp::Max] {
        // Index path: one served aggregation query.
        let batch_seed = 0x1D10 ^ op as u64;
        let pool = ServePool::new(Arc::clone(&index), 2);
        let served = pool.serve(&[Query::Aggregate { op }], batch_seed);
        let per_part = match &served.results[0] {
            lcs_serve::QueryResult::Aggregate { per_part } => per_part.clone(),
            other => panic!("expected aggregation, got {other:?}"),
        };

        // Session path: the identical workload through the CONGEST
        // engine's MultiAggregate bundle, at shard counts {1, 4}.
        let seed = per_query_seed(batch_seed, 0);
        let value = |v: NodeId, part: usize| -> u64 {
            if p.part_of(v) == Some(part as u32) {
                aggregate_value(seed, part, v)
            } else {
                op.identity()
            }
        };
        let setup = index.aggregation_setup();
        let mut fingerprints = Vec::new();
        for shards in [1usize, 4] {
            let sim = SimConfig {
                shards,
                ..SimConfig::default()
            };
            let (roots, outcome) = setup
                .aggregate_simulated(wg.graph(), op, &value, true, &sim)
                .expect("session aggregation");
            for (i, &ans) in per_part.iter().enumerate() {
                assert_eq!(roots[i], Some(ans), "{op:?} part {i} at {shards} shards");
            }
            fingerprints.push(outcome.stats.fingerprint());
        }
        assert_eq!(
            fingerprints[0], fingerprints[1],
            "{op:?}: session-path RunStats fingerprint must be shard-count invariant"
        );
    }
}
