//! Partwise aggregation — the primitive that turns shortcuts into
//! algorithms.
//!
//! Given a partition and a shortcut set, this module builds one BFS tree
//! per part inside its augmented subgraph `G[S_i] ∪ H_i` (rooted at the
//! part leader) and then aggregates one value per part along all trees
//! simultaneously. Everything the paper's applications need — MST's
//! minimum-weight outgoing edge, min-cut counters, verification bits —
//! is an instance of this primitive, and its cost is exactly what the
//! shortcut quality promises:
//!
//! * tree depth ≤ dilation,
//! * per-edge tree overlap ≤ congestion,
//! * so the scheduled execution takes `O(c + d·log n)` rounds
//!   (Theorem 2.1), which the simulator realizes with queues and the
//!   accountant charges via [`ScheduleCost`].

use crate::partition::Partition;
use crate::shortcut::ShortcutSet;
use lcs_congest::{
    AggOp, MultiAggOutcome, MultiAggregate, Participation, ScheduleCost, Session, SimConfig,
    SimError,
};
use lcs_graph::{bfs, BfsOptions, Graph, NodeId, UNREACHABLE};
use std::collections::HashMap;

/// One part's aggregation tree: BFS tree of `G[S_i] ∪ H_i` rooted at
/// the leader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartTree {
    /// The part index this tree belongs to.
    pub part: usize,
    /// Root (= part leader).
    pub root: NodeId,
    /// `(node, parent)` pairs for every tree node (root has `None`).
    pub members: Vec<(NodeId, Option<NodeId>)>,
    /// Tree depth.
    pub depth: u32,
    /// Whether the tree reaches every member of the part (it always
    /// does for valid partitions, since `G[S_i]` is connected).
    pub spans_part: bool,
}

/// The per-part trees plus the schedule-relevant measurements.
#[derive(Debug, Clone)]
pub struct AggregationSetup {
    /// One tree per part.
    pub trees: Vec<PartTree>,
    /// Max number of part-trees crossing any single edge.
    pub tree_congestion: u32,
    /// Max tree depth.
    pub tree_depth: u32,
}

impl AggregationSetup {
    /// Builds the trees by centralized BFS inside each augmented
    /// subgraph. (The distributed construction grows the same trees with
    /// `lcs-congest::multi_bfs`; `lcs-core` exercises that path.)
    ///
    /// # Panics
    ///
    /// Panics if `shortcuts.num_parts() != partition.num_parts()`.
    pub fn build(graph: &Graph, partition: &Partition, shortcuts: &ShortcutSet) -> Self {
        assert_eq!(shortcuts.num_parts(), partition.num_parts());
        let mut trees = Vec::with_capacity(partition.num_parts());
        let mut edge_load = vec![0u32; graph.m()];
        let mut max_depth = 0u32;
        for i in 0..partition.num_parts() {
            let sub = shortcuts.augmented_subgraph(graph, partition, i);
            let root = partition.leader(i);
            let local_root = sub
                .local_of(root)
                .expect("leader is in its own augmented subgraph");
            let r = bfs(sub.local(), &[local_root], &BfsOptions::default());
            let mut members = Vec::new();
            let mut depth = 0u32;
            for lv in 0..sub.n() as u32 {
                let d = r.dist[lv as usize];
                if d == UNREACHABLE {
                    continue;
                }
                depth = depth.max(d);
                let node = sub.parent_of(lv);
                let parent = r.parent[lv as usize].map(|lp| sub.parent_of(lp));
                if let Some(p) = parent {
                    let e = graph
                        .edge_between(p, node)
                        .expect("tree edges exist in parent graph");
                    edge_load[e.index()] += 1;
                }
                members.push((node, parent));
            }
            let spans_part = partition.part(i).iter().all(|&v| {
                sub.local_of(v)
                    .is_some_and(|lv| r.dist[lv as usize] != UNREACHABLE)
            });
            max_depth = max_depth.max(depth);
            trees.push(PartTree {
                part: i,
                root,
                members,
                depth,
                spans_part,
            });
        }
        AggregationSetup {
            trees,
            tree_congestion: edge_load.iter().copied().max().unwrap_or(0),
            tree_depth: max_depth,
        }
    }

    /// The schedule cost of one aggregation sweep over all trees.
    pub fn schedule_cost(&self) -> ScheduleCost {
        ScheduleCost {
            congestion: self.tree_congestion as u64,
            dilation: self.tree_depth as u64 + 1,
        }
    }

    /// Accounted rounds for one aggregation (convergecast; double for
    /// convergecast + broadcast) on an `n`-node network.
    pub fn accounted_rounds(&self, n: usize) -> u64 {
        self.schedule_cost().rounds_no_precompute(n)
    }

    /// Builds simulator participations; `value(node, part)` supplies each
    /// tree node's contribution (nodes outside `S_i` that serve in the
    /// tree should contribute the operator's identity).
    pub fn participations(
        &self,
        n: usize,
        value: &dyn Fn(NodeId, usize) -> u64,
    ) -> Vec<Vec<Participation>> {
        let mut per_node: Vec<Vec<Participation>> = vec![Vec::new(); n];
        for tree in &self.trees {
            // children lists derived from parents.
            let mut children: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
            for &(v, p) in &tree.members {
                if let Some(p) = p {
                    children.entry(p).or_default().push(v);
                }
            }
            for &(v, p) in &tree.members {
                let mut ch = children.remove(&v).unwrap_or_default();
                ch.sort_unstable();
                per_node[v as usize].push(Participation {
                    inst: tree.part as u32,
                    parent: p,
                    children: ch,
                    value: value(v, tree.part),
                });
            }
        }
        per_node
    }

    /// Centralized reference: aggregate per part directly over the tree
    /// members (identical semantics to the distributed execution).
    pub fn aggregate_centralized(
        &self,
        op: AggOp,
        value: &dyn Fn(NodeId, usize) -> u64,
    ) -> Vec<u64> {
        self.trees
            .iter()
            .map(|t| {
                t.members
                    .iter()
                    .map(|&(v, _)| value(v, t.part))
                    .fold(op.identity(), |a, b| op.apply(a, b))
            })
            .collect()
    }

    /// Runs the aggregation as one phase of an existing [`Session`] —
    /// the composable form: a multi-phase application (e.g. Boruvka)
    /// creates one session up front and every aggregation sweep reuses
    /// its engine (pool, buffers) and accumulates into its cumulative
    /// statistics. Returns the per-part results (as seen at each part
    /// root) plus the raw outcome (per-node results when `broadcast`,
    /// queueing stats).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn aggregate_in_session(
        &self,
        session: &mut Session<'_>,
        op: AggOp,
        value: &dyn Fn(NodeId, usize) -> u64,
        broadcast: bool,
    ) -> Result<(Vec<Option<u64>>, MultiAggOutcome), SimError> {
        let parts = self.participations(session.graph().n(), value);
        let outcome = session.run(MultiAggregate::new(parts, op, broadcast))?;
        let results = self
            .trees
            .iter()
            .map(|t| outcome.result_at(t.root, t.part as u32))
            .collect();
        Ok((results, outcome))
    }

    /// One-shot convenience over [`AggregationSetup::aggregate_in_session`]:
    /// spins up a throwaway [`Session`] for a single aggregation.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn aggregate_simulated(
        &self,
        graph: &Graph,
        op: AggOp,
        value: &dyn Fn(NodeId, usize) -> u64,
        broadcast: bool,
        cfg: &SimConfig,
    ) -> Result<(Vec<Option<u64>>, MultiAggOutcome), SimError> {
        self.aggregate_in_session(&mut Session::new(graph, cfg.clone()), op, value, broadcast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{global_tree_shortcuts, trivial_shortcuts};
    use lcs_graph::{HighwayGraph, HighwayParams};

    fn fixture() -> (lcs_graph::Graph, Partition) {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 3,
            path_len: 12,
            diameter: 4,
        })
        .unwrap();
        let g = hw.graph().clone();
        let p = Partition::new(&g, hw.path_parts()).unwrap();
        (g, p)
    }

    #[test]
    fn trees_span_parts_and_depth_matches_shortcut_quality() {
        let (g, p) = fixture();
        let trivial = AggregationSetup::build(&g, &p, &trivial_shortcuts(&p));
        assert!(trivial.trees.iter().all(|t| t.spans_part));
        // Depth of a path part from its leader (an endpoint) = len-1.
        assert_eq!(trivial.tree_depth, 11);
        assert_eq!(trivial.tree_congestion, 1);

        let tree = global_tree_shortcuts(&g, &p, 0, Some(1));
        let fast = AggregationSetup::build(&g, &p, &tree);
        // From a part leader, any node of the augmented subgraph is
        // reachable within leader->root->node <= 2D hops.
        assert!(fast.tree_depth <= 8, "depth {}", fast.tree_depth);
        assert!(
            (2..=3).contains(&fast.tree_congestion),
            "parts share global-tree edges, congestion {}",
            fast.tree_congestion
        );
    }

    #[test]
    fn centralized_and_simulated_aggregation_agree() {
        let (g, p) = fixture();
        let s = global_tree_shortcuts(&g, &p, 0, Some(1));
        let setup = AggregationSetup::build(&g, &p, &s);
        // Value: node id if in the part, identity otherwise.
        let value = |v: NodeId, part: usize| {
            if p.part_of(v) == Some(part as u32) {
                v as u64
            } else {
                AggOp::Min.identity()
            }
        };
        let central = setup.aggregate_centralized(AggOp::Min, &value);
        let (roots, outcome) = setup
            .aggregate_simulated(&g, AggOp::Min, &value, false, &SimConfig::default())
            .unwrap();
        for i in 0..p.num_parts() {
            assert_eq!(roots[i], Some(central[i]), "part {i}");
            // Min node id of path i is its first node.
            assert_eq!(central[i], *p.part(i).first().unwrap() as u64);
        }
        assert!(outcome.stats.rounds > 0);
    }

    #[test]
    fn broadcast_delivers_to_all_part_members() {
        let (g, p) = fixture();
        let s = global_tree_shortcuts(&g, &p, 0, Some(1));
        let setup = AggregationSetup::build(&g, &p, &s);
        let value = |v: NodeId, part: usize| {
            if p.part_of(v) == Some(part as u32) {
                v as u64
            } else {
                0
            }
        };
        let (_, outcome) = setup
            .aggregate_simulated(&g, AggOp::Max, &value, true, &SimConfig::default())
            .unwrap();
        for i in 0..p.num_parts() {
            let expected = *p.part(i).last().unwrap() as u64;
            for &v in p.part(i) {
                assert_eq!(
                    outcome.result_at(v, i as u32),
                    Some(expected),
                    "node {v} of part {i}"
                );
            }
        }
    }

    #[test]
    fn accounted_rounds_scale_with_quality() {
        let (g, p) = fixture();
        let slow = AggregationSetup::build(&g, &p, &trivial_shortcuts(&p));
        let fast = AggregationSetup::build(&g, &p, &global_tree_shortcuts(&g, &p, 0, Some(1)));
        // Better shortcuts -> cheaper aggregation, even though the
        // global tree costs congestion.
        assert!(fast.accounted_rounds(g.n()) < slow.accounted_rounds(g.n()));
    }

    #[test]
    fn simulated_rounds_within_schedule_bound() {
        let (g, p) = fixture();
        let s = global_tree_shortcuts(&g, &p, 0, Some(1));
        let setup = AggregationSetup::build(&g, &p, &s);
        let value = |_: NodeId, _: usize| 1u64;
        let (_, outcome) = setup
            .aggregate_simulated(&g, AggOp::Sum, &value, false, &SimConfig::default())
            .unwrap();
        let bound = setup.schedule_cost().rounds(g.n());
        assert!(
            outcome.stats.rounds <= bound,
            "simulated {} vs bound {}",
            outcome.stats.rounds,
            bound
        );
    }
}
