//! Baseline shortcut constructions the paper's result is measured
//! against.
//!
//! * [`trivial_shortcuts`] — `H_i = ∅`: dilation equals the part
//!   diameter, congestion ≤ 1. The "do nothing" lower anchor.
//! * [`global_tree_shortcuts`] — the folklore `O(D + √n)` construction
//!   Ghaffari–Haeupler start from: parts larger than a threshold
//!   (default `√n`) receive the entire global BFS tree; small parts
//!   receive nothing. Congestion = number of large parts (≤ `n/√n = √n`),
//!   dilation ≤ max(2·tree depth, small-part diameter) = `O(D + √n)`.
//! * [`kitamura_style_shortcuts`] — sampling constructions specialized
//!   to `D ∈ {3, 4}` in the spirit of Kitamura et al. (DISC 2019), who
//!   matched the `Ω̃(n^{1/4})` / `Ω̃(n^{1/3})` lower bounds of Lotker et
//!   al. Their code is not public; as the paper notes its own D = 3 case
//!   "is similar to" Kitamura's, we instantiate the same sampling
//!   template with a *fixed small repetition count* (one for D = 3, two
//!   for D = 4) rather than the full `D`-repetition scheme — see
//!   DESIGN.md §2 (substitutions).

use crate::partition::Partition;
use crate::shortcut::ShortcutSet;
use lcs_graph::{bfs, BfsOptions, EdgeId, Graph, NodeId};
use rand::Rng;

/// `H_i = ∅` for every part.
pub fn trivial_shortcuts(partition: &Partition) -> ShortcutSet {
    ShortcutSet::empty(partition.num_parts())
}

/// The folklore `O(D + √n)` construction: every part whose size is at
/// least `threshold` (default `⌈√n⌉`, pass `None`) receives the whole
/// BFS tree of `G` rooted at `root`.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn global_tree_shortcuts(
    graph: &Graph,
    partition: &Partition,
    root: NodeId,
    threshold: Option<usize>,
) -> ShortcutSet {
    let threshold = threshold.unwrap_or_else(|| (graph.n() as f64).sqrt().ceil() as usize);
    let r = bfs(graph, &[root], &BfsOptions::default());
    let mut tree_edges: Vec<EdgeId> = Vec::with_capacity(graph.n().saturating_sub(1));
    for v in graph.nodes() {
        if let Some(p) = r.parent[v as usize] {
            tree_edges.push(graph.edge_between(p, v).expect("tree edge exists"));
        }
    }
    tree_edges.sort_unstable();
    let per_part = (0..partition.num_parts())
        .map(|i| {
            if partition.part(i).len() >= threshold {
                tree_edges.clone()
            } else {
                Vec::new()
            }
        })
        .collect();
    ShortcutSet::from_edge_lists(per_part)
}

/// Kitamura-style sampling shortcuts for `D ∈ {3, 4}`.
///
/// Every node outside `S_i` samples each incident edge into `H_i` with
/// probability `min(1, c·log n · n^(−1/(D−1)))`, repeated once for
/// `D = 3` and twice for `D = 4`; every node inside `S_i` contributes
/// all incident edges (Step 1 of the shared template). Shortcuts are
/// built only for parts whose leader-radius exceeds
/// `k_D = n^((D−2)/(2D−2))`.
///
/// # Panics
///
/// Panics if `d` is not 3 or 4.
pub fn kitamura_style_shortcuts<R: Rng>(
    graph: &Graph,
    partition: &Partition,
    d: u32,
    prob_constant: f64,
    rng: &mut R,
) -> ShortcutSet {
    assert!(
        d == 3 || d == 4,
        "kitamura baseline is specialized to D in {{3,4}}"
    );
    let n = graph.n().max(2) as f64;
    let p = (prob_constant * n.ln() * n.powf(-1.0 / (d as f64 - 1.0))).min(1.0);
    let reps = if d == 3 { 1 } else { 2 };
    let k_d = n.powf((d as f64 - 2.0) / (2.0 * d as f64 - 2.0));
    let mut per_part: Vec<Vec<EdgeId>> = Vec::with_capacity(partition.num_parts());
    for i in 0..partition.num_parts() {
        if (partition.leader_radius(graph, i) as f64) <= k_d {
            per_part.push(Vec::new());
            continue;
        }
        let mut edges = Vec::new();
        // Step 1: all edges incident to the part.
        for &v in partition.part(i) {
            for (_, e) in graph.neighbors_with_edges(v) {
                edges.push(e);
            }
        }
        // Step 2 (reps repetitions): outside nodes sample their arcs.
        for _rep in 0..reps {
            for u in graph.nodes() {
                if partition.part_of(u) == Some(i as u32) {
                    continue;
                }
                for (_, e) in graph.neighbors_with_edges(u) {
                    if rng.gen_bool(p) {
                        edges.push(e);
                    }
                }
            }
        }
        per_part.push(edges);
    }
    ShortcutSet::from_edge_lists(per_part)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortcut::{measure_quality, DilationMode};
    use lcs_graph::{HighwayGraph, HighwayParams};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn highway(d: u32, paths: usize, len: usize) -> (HighwayGraph, Partition) {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: paths,
            path_len: len,
            diameter: d,
        })
        .unwrap();
        let p = Partition::new(hw.graph(), hw.path_parts()).unwrap();
        (hw, p)
    }

    #[test]
    fn trivial_has_unit_congestion_and_path_dilation() {
        let (hw, p) = highway(4, 3, 16);
        let s = trivial_shortcuts(&p);
        let r = measure_quality(hw.graph(), &p, &s, DilationMode::Exact);
        assert_eq!(r.quality.congestion, 1);
        assert_eq!(r.quality.dilation, 15);
    }

    #[test]
    fn global_tree_gives_od_dilation_for_large_parts() {
        let (hw, p) = highway(4, 3, 25);
        let g = hw.graph();
        // threshold below part size so every path part is "large".
        let s = global_tree_shortcuts(g, &p, 0, Some(10));
        let r = measure_quality(g, &p, &s, DilationMode::Exact);
        // Dilation through the global tree is at most 2 * depth <= 2D.
        assert!(
            r.quality.dilation <= 2 * 4 + 2,
            "dilation {} too large",
            r.quality.dilation
        );
        // Tree edges are shared by all three parts.
        assert_eq!(r.quality.congestion, 3);
    }

    #[test]
    fn global_tree_skips_small_parts() {
        let (hw, p) = highway(4, 2, 16);
        let s = global_tree_shortcuts(hw.graph(), &p, 0, Some(1000));
        assert_eq!(s.total_edges(), 0);
    }

    #[test]
    fn kitamura_d3_improves_over_trivial() {
        let (hw, p) = highway(3, 4, 40);
        let g = hw.graph();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let s = kitamura_style_shortcuts(g, &p, 3, 2.0, &mut rng);
        let r = measure_quality(g, &p, &s, DilationMode::Exact);
        let trivial = measure_quality(g, &p, &trivial_shortcuts(&p), DilationMode::Exact);
        assert!(
            r.quality.dilation < trivial.quality.dilation,
            "sampling should shortcut the paths: {} vs {}",
            r.quality.dilation,
            trivial.quality.dilation
        );
    }

    #[test]
    fn kitamura_rejects_other_diameters() {
        let (hw, p) = highway(5, 2, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            kitamura_style_shortcuts(hw.graph(), &p, 5, 1.0, &mut rng)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn kitamura_skips_low_radius_parts() {
        // Parts with radius below k_D get no shortcut edges.
        let (hw, p) = highway(3, 2, 8);
        // n small => k_3 ~ n^(1/4); radius 7 still above? Use the
        // skip-branch by making path short relative to k_3.
        let g = hw.graph();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let s = kitamura_style_shortcuts(g, &p, 3, 2.0, &mut rng);
        let k3 = (g.n() as f64).powf(0.25);
        for i in 0..p.num_parts() {
            if (p.leader_radius(g, i) as f64) <= k3 {
                assert!(s.edges(i).is_empty());
            }
        }
    }
}
