//! The [`ShortcutBuilder`] trait: one interface over every shortcut
//! construction, so backends can be swapped, differentially tested, and
//! benchmarked against each other (`quality_bench`).
//!
//! A backend is a *strategy object*: cheap to construct, carrying only
//! its parameters. [`ShortcutBuilder::build`] must be a pure function of
//! `(graph, partition, rng stream)` — equal inputs and an equally seeded
//! RNG must produce a bit-identical [`ShortcutSet`]. The differential
//! suite (`tests/builder_equivalence.rs`) holds the migrated baselines
//! to byte-equality with their pre-trait free functions, and the CI
//! quality-bench fingerprint gate holds every backend to cross-run
//! determinism.
//!
//! Not to be confused with `lcs_core::ShortcutBuilder`, the established
//! *configuration* builder for the Kogan–Parter pipeline; the core crate
//! adapts that pipeline onto this trait as `lcs_core::KoganParter`.
//!
//! ## Adding a backend
//!
//! 1. Implement [`ShortcutBuilder`] (and [`declared_bound`] if the
//!    construction carries a provable or structural quality
//!    certificate).
//! 2. Register it in `lcs_bench::quality::registry` so the quality
//!    bench, the tier-2 registry proptest, and the CI gate pick it up.
//!
//! [`declared_bound`]: ShortcutBuilder::declared_bound

use crate::baseline::{global_tree_shortcuts, kitamura_style_shortcuts, trivial_shortcuts};
use crate::partition::Partition;
use crate::shortcut::{Quality, ShortcutSet};
use lcs_graph::{eccentricity, Graph, NodeId};
use rand::RngCore;

/// A shortcut construction: given a graph and a partition into
/// vertex-disjoint connected parts, produce one shortcut edge set per
/// part (Definition 1.1 of Ghaffari–Haeupler).
pub trait ShortcutBuilder {
    /// Stable machine-readable backend name (used in `BENCH_quality.json`
    /// cells and test labels).
    fn name(&self) -> &'static str;

    /// The backend's parameters as `(key, value)` pairs, for reporting.
    fn params(&self) -> Vec<(&'static str, String)>;

    /// Builds the shortcut set. Must be deterministic in
    /// `(graph, partition, rng stream)`.
    fn build(&self, graph: &Graph, partition: &Partition, rng: &mut dyn RngCore) -> ShortcutSet;

    /// Whether this backend's construction applies to the given
    /// instance at all (e.g. the Kitamura sampling baseline is
    /// specialized to diameters 3 and 4). Inapplicable backends are
    /// skipped by the bench and the registry proptest.
    fn applicable(&self, _graph: &Graph, _partition: &Partition) -> bool {
        true
    }

    /// The quality bound this construction guarantees on this instance,
    /// when it has one: a provable closed form (Kogan–Parter's k(D)
    /// bounds) or a structural certificate computed by the construction
    /// itself (separator hierarchies, capped growth). `None` when the
    /// backend makes no per-instance promise (probabilistic baselines).
    ///
    /// The contract — enforced by `verifier::verify` in the bench and
    /// the tier-2 registry proptest — is that measured quality never
    /// exceeds the declared bound.
    fn declared_bound(&self, _graph: &Graph, _partition: &Partition) -> Option<Quality> {
        None
    }
}

/// The `H_i = ∅` baseline behind the trait: congestion ≤ 1 by
/// definition, dilation bounded only by the part diameters.
#[derive(Debug, Clone, Copy, Default)]
pub struct Trivial;

impl ShortcutBuilder for Trivial {
    fn name(&self) -> &'static str {
        "trivial"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        Vec::new()
    }

    fn build(&self, _graph: &Graph, partition: &Partition, _rng: &mut dyn RngCore) -> ShortcutSet {
        trivial_shortcuts(partition)
    }

    fn declared_bound(&self, graph: &Graph, _partition: &Partition) -> Option<Quality> {
        // A connected part's induced diameter is at most n - 1.
        Some(Quality {
            congestion: 1,
            dilation: graph.n().saturating_sub(1) as u32,
        })
    }
}

/// The folklore `O(D + √n)` global-tree baseline behind the trait
/// (see [`global_tree_shortcuts`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalTree {
    /// BFS-tree root (default 0).
    pub root: NodeId,
    /// Part-size threshold above which a part receives the tree;
    /// `None` (the default) = `⌈√n⌉`.
    pub threshold: Option<usize>,
}

impl GlobalTree {
    fn effective_threshold(&self, graph: &Graph) -> usize {
        self.threshold
            .unwrap_or_else(|| (graph.n() as f64).sqrt().ceil() as usize)
    }
}

impl ShortcutBuilder for GlobalTree {
    fn name(&self) -> &'static str {
        "global_tree"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        vec![
            ("root", self.root.to_string()),
            (
                "threshold",
                self.threshold
                    .map_or_else(|| "sqrt".to_string(), |t| t.to_string()),
            ),
        ]
    }

    fn build(&self, graph: &Graph, partition: &Partition, _rng: &mut dyn RngCore) -> ShortcutSet {
        global_tree_shortcuts(graph, partition, self.root, self.threshold)
    }

    fn declared_bound(&self, graph: &Graph, partition: &Partition) -> Option<Quality> {
        // Congestion: the tree is shared by every "large" part, plus at
        // most one part owning an edge internally. Dilation: large parts
        // route through the root (≤ 2·ecc(root)), small parts stay
        // inside themselves (diameter < threshold). Both need the tree
        // to span the graph, hence the connectivity requirement.
        let ecc = eccentricity(graph, self.root, true)?;
        let threshold = self.effective_threshold(graph);
        let large = (0..partition.num_parts())
            .filter(|&i| partition.part(i).len() >= threshold)
            .count() as u32;
        Some(Quality {
            congestion: large + 1,
            dilation: (2 * ecc).max(threshold.saturating_sub(1) as u32).max(1),
        })
    }
}

/// The Kitamura-style sampling baseline behind the trait
/// (see [`kitamura_style_shortcuts`]); applicable to `D ∈ {3, 4}` only.
#[derive(Debug, Clone, Copy)]
pub struct KitamuraSampling {
    /// Target diameter (3 or 4).
    pub d: u32,
    /// Sampling-probability constant `c` in `p = c·log n·n^(−1/(D−1))`.
    pub prob_constant: f64,
}

impl ShortcutBuilder for KitamuraSampling {
    fn name(&self) -> &'static str {
        "kitamura_sampling"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        vec![
            ("d", self.d.to_string()),
            ("prob_constant", format!("{}", self.prob_constant)),
        ]
    }

    fn applicable(&self, _graph: &Graph, _partition: &Partition) -> bool {
        self.d == 3 || self.d == 4
    }

    fn build(
        &self,
        graph: &Graph,
        partition: &Partition,
        mut rng: &mut dyn RngCore,
    ) -> ShortcutSet {
        // `&mut dyn RngCore` itself implements `Rng` (and is `Sized`),
        // so the generic free function sees the identical RNG stream —
        // the byte-equality differential suite depends on this.
        kitamura_style_shortcuts(graph, partition, self.d, self.prob_constant, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortcut::{measure_quality, DilationMode};
    use crate::verifier::verify;
    use lcs_graph::{gnp_connected, HighwayGraph, HighwayParams};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn fixture() -> (Graph, Partition) {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 3,
            path_len: 14,
            diameter: 4,
        })
        .unwrap();
        let g = hw.graph().clone();
        let p = Partition::new(&g, hw.path_parts()).unwrap();
        (g, p)
    }

    #[test]
    fn trait_objects_are_registrable() {
        let backends: Vec<Box<dyn ShortcutBuilder>> = vec![
            Box::new(Trivial),
            Box::new(GlobalTree::default()),
            Box::new(KitamuraSampling {
                d: 4,
                prob_constant: 1.0,
            }),
        ];
        let (g, p) = fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for b in &backends {
            assert!(!b.name().is_empty());
            if !b.applicable(&g, &p) {
                continue;
            }
            let s = b.build(&g, &p, &mut rng);
            verify(&g, &p, &s, b.declared_bound(&g, &p), DilationMode::Exact)
                .unwrap_or_else(|e| panic!("{} failed verification: {e:?}", b.name()));
        }
    }

    #[test]
    fn declared_bounds_hold_on_random_graphs() {
        for seed in [3u64, 4, 5] {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = gnp_connected(60, 0.08, &mut rng);
            let p = Partition::bfs_balls(&g, 5, &mut rng);
            for b in [
                Box::new(Trivial) as Box<dyn ShortcutBuilder>,
                Box::new(GlobalTree::default()),
            ] {
                let s = b.build(&g, &p, &mut rng);
                let q = measure_quality(&g, &p, &s, DilationMode::Exact).quality;
                let bound = b.declared_bound(&g, &p).expect("bound exists");
                assert!(
                    q.congestion <= bound.congestion && q.dilation <= bound.dilation,
                    "{}: measured {q:?} exceeds declared {bound:?}",
                    b.name()
                );
            }
        }
    }

    #[test]
    fn kitamura_backend_reports_applicability() {
        let (g, p) = fixture();
        let yes = KitamuraSampling {
            d: 3,
            prob_constant: 1.0,
        };
        let no = KitamuraSampling {
            d: 5,
            prob_constant: 1.0,
        };
        assert!(yes.applicable(&g, &p));
        assert!(!no.applicable(&g, &p));
    }
}
