//! The frozen construction artifact behind the service layer: a
//! [`ShortcutIndex`] snapshots everything a shortcut construction
//! produces — the graph, baseline edge weights, the partition, the
//! per-part shortcut edge sets, the aggregation trees, and the
//! backend's certificate — so applications can answer many queries
//! from one preprocessing run (the CCH-style construction /
//! customization / query split).
//!
//! ## On-disk format
//!
//! A flat little-endian layout that loads by straight buffer reads —
//! fixed-width integer arrays, no pointers:
//!
//! ```text
//! magic    8 B   b"LCSIDX01"
//! version  u32   INDEX_FORMAT_VERSION
//! sections u32   section count
//! table    sections × { id: u32, reserved: u32, offset: u64, len: u64 }
//! payload  the sections, in table order
//! checksum u64   FNV-1a over everything before it
//! ```
//!
//! Section payloads are `u32`/`u64` arrays (node and edge ids are
//! `u32`, weights `u64`); strings are length-prefixed UTF-8. Parsing a
//! malformed buffer returns a typed [`IndexError`] — never panics —
//! and a round trip is byte-exact: `to_bytes ∘ from_bytes = id`.

use crate::aggregation::{AggregationSetup, PartTree};
use crate::partition::Partition;
use crate::shortcut::{Quality, ShortcutSet};
use lcs_graph::{EdgeId, Graph, NodeId};
use std::fmt;
use std::path::Path;

/// Current serialization format version.
pub const INDEX_FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"LCSIDX01";

/// Section ids of the on-disk format, in their fixed emission order.
mod section {
    pub const META: u32 = 1;
    pub const GRAPH: u32 = 2;
    pub const WEIGHTS: u32 = 3;
    pub const PARTITION: u32 = 4;
    pub const SHORTCUTS: u32 = 5;
    pub const TREES: u32 = 6;
}

/// Typed (de)serialization failure. Malformed inputs are reported, not
/// panicked on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// Buffer ends before the structure it promises.
    Truncated,
    /// Leading magic is not `LCSIDX01`.
    BadMagic,
    /// Format version this build cannot read.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// Trailing FNV-1a checksum does not match the content.
    BadChecksum {
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum recomputed over the content.
        computed: u64,
    },
    /// Structurally invalid content (bad offsets, invalid graph or
    /// partition, non-UTF-8 string, …).
    Malformed(String),
    /// I/O failure in [`ShortcutIndex::save`] / [`ShortcutIndex::load`].
    Io(String),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Truncated => write!(f, "buffer truncated"),
            IndexError::BadMagic => write!(f, "not a ShortcutIndex file (bad magic)"),
            IndexError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported format version {found} (this build reads {INDEX_FORMAT_VERSION})"
                )
            }
            IndexError::BadChecksum { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#x}, computed {computed:#x}"
                )
            }
            IndexError::Malformed(why) => write!(f, "malformed index: {why}"),
            IndexError::Io(why) => write!(f, "i/o error: {why}"),
        }
    }
}

impl std::error::Error for IndexError {}

/// Construction metadata carried by an index: which backend built it,
/// with what parameters and seed, and what it certified.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexMeta {
    /// Backend name ([`crate::ShortcutBuilder::name`]).
    pub backend: String,
    /// Backend parameters, `key=value` rendered by the builder.
    pub params: Vec<(String, String)>,
    /// Seed the construction ran under.
    pub seed: u64,
    /// The backend's declared (certified) quality bound, if any.
    pub certificate: Option<Quality>,
    /// Graph diameter the construction keyed on, if known.
    pub diameter: Option<u32>,
}

/// A frozen, versioned snapshot of one shortcut construction —
/// everything needed to answer SSSP / MST / aggregation / min-cut
/// queries without re-running the pipeline. Built once per graph via
/// [`freeze`](ShortcutIndex::freeze) (or the `lcs-core` adapters),
/// shared read-only (`Arc<ShortcutIndex>`) across query workers, and
/// serializable to the flat format described in the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortcutIndex {
    meta: IndexMeta,
    graph: Graph,
    weights: Vec<u64>,
    partition: Partition,
    shortcuts: ShortcutSet,
    trees: Vec<PartTree>,
    tree_congestion: u32,
    tree_depth: u32,
}

impl ShortcutIndex {
    /// Freezes one construction into an index. The aggregation trees
    /// (the "shortcut tree" hierarchy queries walk) are built here,
    /// once, by the same deterministic BFS the one-shot pipeline uses —
    /// so index-served aggregations are byte-identical to fresh ones.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != graph.m()` or the shortcut set's
    /// part count differs from the partition's (construction-bug
    /// class, same contract as [`AggregationSetup::build`]).
    pub fn freeze(
        graph: Graph,
        weights: Vec<u64>,
        partition: Partition,
        shortcuts: ShortcutSet,
        meta: IndexMeta,
    ) -> Self {
        assert_eq!(weights.len(), graph.m(), "one weight per edge");
        let setup = AggregationSetup::build(&graph, &partition, &shortcuts);
        ShortcutIndex {
            meta,
            graph,
            weights,
            partition,
            shortcuts,
            trees: setup.trees,
            tree_congestion: setup.tree_congestion,
            tree_depth: setup.tree_depth,
        }
    }

    /// Construction metadata.
    pub fn meta(&self) -> &IndexMeta {
        &self.meta
    }

    /// The graph the index was built on.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Baseline edge weights (customization may override these at
    /// query time without touching the index).
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// The partition the shortcuts augment.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The per-part shortcut edge sets.
    pub fn shortcuts(&self) -> &ShortcutSet {
        &self.shortcuts
    }

    /// The frozen aggregation trees, as an [`AggregationSetup`] ready
    /// for [`AggregationSetup::aggregate_in_session`] — identical to
    /// rebuilding from graph + partition + shortcuts.
    pub fn aggregation_setup(&self) -> AggregationSetup {
        AggregationSetup {
            trees: self.trees.clone(),
            tree_congestion: self.tree_congestion,
            tree_depth: self.tree_depth,
        }
    }

    /// Number of aggregation trees (= parts).
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    // ---- serialization ------------------------------------------------

    /// Serializes to the flat little-endian format (module docs).
    pub fn to_bytes(&self) -> Vec<u8> {
        let sections: Vec<(u32, Vec<u8>)> = vec![
            (section::META, self.meta_bytes()),
            (section::GRAPH, self.graph_bytes()),
            (section::WEIGHTS, self.weights_bytes()),
            (section::PARTITION, self.partition_bytes()),
            (section::SHORTCUTS, self.shortcuts_bytes()),
            (section::TREES, self.trees_bytes()),
        ];
        let table_len = 8 + 4 + 4 + sections.len() * 24;
        let mut out = Vec::with_capacity(
            table_len + sections.iter().map(|(_, b)| b.len()).sum::<usize>() + 8,
        );
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&INDEX_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        let mut offset = table_len as u64;
        for (id, body) in &sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(body.len() as u64).to_le_bytes());
            offset += body.len() as u64;
        }
        for (_, body) in &sections {
            out.extend_from_slice(body);
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses the flat format.
    ///
    /// # Errors
    ///
    /// [`IndexError`] on truncation, wrong magic, unsupported version,
    /// checksum mismatch, or structurally invalid content. Never
    /// panics on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IndexError> {
        if bytes.len() < 8 + 4 + 4 + 8 {
            return Err(IndexError::Truncated);
        }
        let (content, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if &content[..8] != MAGIC {
            return Err(IndexError::BadMagic);
        }
        let version = u32::from_le_bytes(content[8..12].try_into().expect("4 bytes"));
        if version != INDEX_FORMAT_VERSION {
            return Err(IndexError::UnsupportedVersion { found: version });
        }
        let n_sections = u32::from_le_bytes(content[12..16].try_into().expect("4 bytes")) as usize;
        let table_len = 16usize
            .checked_add(n_sections.checked_mul(24).ok_or(IndexError::Truncated)?)
            .ok_or(IndexError::Truncated)?;
        if content.len() < table_len {
            return Err(IndexError::Truncated);
        }
        // Structural length check first, so a cut-off file reports
        // `Truncated` rather than the checksum mismatch it also causes.
        for s in 0..n_sections {
            let e = 16 + s * 24;
            let off = u64::from_le_bytes(content[e + 8..e + 16].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(content[e + 16..e + 24].try_into().expect("8 bytes"));
            let end = off.checked_add(len).ok_or(IndexError::Truncated)?;
            if end > content.len() as u64 {
                return Err(IndexError::Truncated);
            }
        }
        let computed = fnv1a(content);
        if stored != computed {
            return Err(IndexError::BadChecksum { stored, computed });
        }
        let find = |want: u32| -> Result<&[u8], IndexError> {
            for s in 0..n_sections {
                let e = 16 + s * 24;
                let id = u32::from_le_bytes(content[e..e + 4].try_into().expect("4 bytes"));
                if id != want {
                    continue;
                }
                let off = u64::from_le_bytes(content[e + 8..e + 16].try_into().expect("8 bytes"))
                    as usize;
                let len = u64::from_le_bytes(content[e + 16..e + 24].try_into().expect("8 bytes"))
                    as usize;
                let end = off.checked_add(len).ok_or(IndexError::Truncated)?;
                if end > content.len() {
                    return Err(IndexError::Truncated);
                }
                return Ok(&content[off..end]);
            }
            Err(IndexError::Malformed(format!("missing section {want}")))
        };

        let meta = parse_meta(find(section::META)?)?;
        let graph = parse_graph(find(section::GRAPH)?)?;
        let weights = parse_weights(find(section::WEIGHTS)?, graph.m())?;
        let partition = parse_partition(find(section::PARTITION)?, &graph)?;
        let (shortcuts, trees, tree_congestion, tree_depth) = {
            let shortcuts = parse_shortcuts(find(section::SHORTCUTS)?, &graph, &partition)?;
            let (trees, c, d) = parse_trees(find(section::TREES)?, &graph)?;
            (shortcuts, trees, c, d)
        };
        if trees.len() != partition.num_parts() {
            return Err(IndexError::Malformed(format!(
                "{} trees for {} parts",
                trees.len(),
                partition.num_parts()
            )));
        }
        Ok(ShortcutIndex {
            meta,
            graph,
            weights,
            partition,
            shortcuts,
            trees,
            tree_congestion,
            tree_depth,
        })
    }

    /// Writes [`Self::to_bytes`] to `path`.
    ///
    /// # Errors
    ///
    /// [`IndexError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), IndexError> {
        std::fs::write(path, self.to_bytes()).map_err(|e| IndexError::Io(e.to_string()))
    }

    /// Reads and parses an index from `path`.
    ///
    /// # Errors
    ///
    /// [`IndexError::Io`] on filesystem failure, otherwise as
    /// [`Self::from_bytes`].
    pub fn load(path: &Path) -> Result<Self, IndexError> {
        let bytes = std::fs::read(path).map_err(|e| IndexError::Io(e.to_string()))?;
        Self::from_bytes(&bytes)
    }

    // ---- section emitters ---------------------------------------------

    fn meta_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_str(&mut out, &self.meta.backend);
        out.extend_from_slice(&(self.meta.params.len() as u32).to_le_bytes());
        for (k, v) in &self.meta.params {
            put_str(&mut out, k);
            put_str(&mut out, v);
        }
        out.extend_from_slice(&self.meta.seed.to_le_bytes());
        match self.meta.certificate {
            Some(q) => {
                out.extend_from_slice(&1u32.to_le_bytes());
                out.extend_from_slice(&q.congestion.to_le_bytes());
                out.extend_from_slice(&q.dilation.to_le_bytes());
            }
            None => out.extend_from_slice(&0u32.to_le_bytes()),
        }
        match self.meta.diameter {
            Some(d) => {
                out.extend_from_slice(&1u32.to_le_bytes());
                out.extend_from_slice(&d.to_le_bytes());
            }
            None => out.extend_from_slice(&0u32.to_le_bytes()),
        }
        out
    }

    fn graph_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.graph.m() * 8);
        out.extend_from_slice(&(self.graph.n() as u32).to_le_bytes());
        out.extend_from_slice(&(self.graph.m() as u32).to_le_bytes());
        for &(u, v) in self.graph.edges() {
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn weights_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.weights.len() * 8);
        for &w in &self.weights {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    fn partition_bytes(&self) -> Vec<u8> {
        // Parts are stored sorted (the Partition invariant), so
        // Partition::new reconstructs leaders and the part_of map
        // exactly.
        let parts = self.partition.parts();
        let mut out = Vec::new();
        out.extend_from_slice(&(parts.len() as u32).to_le_bytes());
        let mut off = 0u32;
        out.extend_from_slice(&off.to_le_bytes());
        for p in parts {
            off += p.len() as u32;
            out.extend_from_slice(&off.to_le_bytes());
        }
        for p in parts {
            for &v in p {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    fn shortcuts_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let parts = self.shortcuts.num_parts();
        out.extend_from_slice(&(parts as u32).to_le_bytes());
        let mut off = 0u32;
        out.extend_from_slice(&off.to_le_bytes());
        for i in 0..parts {
            off += self.shortcuts.edges(i).len() as u32;
            out.extend_from_slice(&off.to_le_bytes());
        }
        for i in 0..parts {
            for &e in self.shortcuts.edges(i) {
                out.extend_from_slice(&e.0.to_le_bytes());
            }
        }
        out
    }

    fn trees_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.trees.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.tree_congestion.to_le_bytes());
        out.extend_from_slice(&self.tree_depth.to_le_bytes());
        let mut off = 0u32;
        out.extend_from_slice(&off.to_le_bytes());
        for t in &self.trees {
            off += t.members.len() as u32;
            out.extend_from_slice(&off.to_le_bytes());
        }
        for t in &self.trees {
            out.extend_from_slice(&(t.part as u32).to_le_bytes());
            out.extend_from_slice(&t.root.to_le_bytes());
            out.extend_from_slice(&t.depth.to_le_bytes());
            out.extend_from_slice(&u32::from(t.spans_part).to_le_bytes());
        }
        for t in &self.trees {
            for &(v, p) in &t.members {
                out.extend_from_slice(&v.to_le_bytes());
                out.extend_from_slice(&p.unwrap_or(u32::MAX).to_le_bytes());
            }
        }
        out
    }
}

// ---- parsing helpers ---------------------------------------------------

/// Little-endian cursor over a section body; every read is
/// bounds-checked and fails with [`IndexError::Truncated`].
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], IndexError> {
        let end = self.at.checked_add(len).ok_or(IndexError::Truncated)?;
        if end > self.buf.len() {
            return Err(IndexError::Truncated);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, IndexError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, IndexError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String, IndexError> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| IndexError::Malformed("non-UTF-8 string".to_string()))
    }

    fn done(&self) -> Result<(), IndexError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(IndexError::Malformed(format!(
                "{} trailing bytes in section",
                self.buf.len() - self.at
            )))
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn parse_meta(body: &[u8]) -> Result<IndexMeta, IndexError> {
    let mut c = Cursor::new(body);
    let backend = c.string()?;
    let n_params = c.u32()? as usize;
    if n_params > body.len() {
        return Err(IndexError::Truncated);
    }
    let mut params = Vec::with_capacity(n_params);
    for _ in 0..n_params {
        let k = c.string()?;
        let v = c.string()?;
        params.push((k, v));
    }
    let seed = c.u64()?;
    let certificate = match c.u32()? {
        0 => None,
        1 => Some(Quality {
            congestion: c.u32()?,
            dilation: c.u32()?,
        }),
        tag => return Err(IndexError::Malformed(format!("bad certificate tag {tag}"))),
    };
    let diameter = match c.u32()? {
        0 => None,
        1 => Some(c.u32()?),
        tag => return Err(IndexError::Malformed(format!("bad diameter tag {tag}"))),
    };
    c.done()?;
    Ok(IndexMeta {
        backend,
        params,
        seed,
        certificate,
        diameter,
    })
}

fn parse_graph(body: &[u8]) -> Result<Graph, IndexError> {
    let mut c = Cursor::new(body);
    let n = c.u32()? as usize;
    let m = c.u32()? as usize;
    if m > body.len() / 8 {
        return Err(IndexError::Truncated);
    }
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u: NodeId = c.u32()?;
        let v: NodeId = c.u32()?;
        edges.push((u, v));
    }
    c.done()?;
    Graph::from_edges(n, &edges).map_err(|e| IndexError::Malformed(format!("graph: {e}")))
}

fn parse_weights(body: &[u8], m: usize) -> Result<Vec<u64>, IndexError> {
    if body.len() != m * 8 {
        return Err(IndexError::Malformed(format!(
            "weights section is {} bytes for m={m}",
            body.len()
        )));
    }
    let mut c = Cursor::new(body);
    let mut weights = Vec::with_capacity(m);
    for _ in 0..m {
        weights.push(c.u64()?);
    }
    Ok(weights)
}

/// Parses a `count, offsets[count+1], items…` ragged u32 array.
fn parse_ragged(c: &mut Cursor<'_>, limit: usize) -> Result<Vec<Vec<u32>>, IndexError> {
    let count = c.u32()? as usize;
    if count > limit {
        return Err(IndexError::Malformed(format!(
            "ragged array count {count} exceeds plausible bound {limit}"
        )));
    }
    let mut offsets = Vec::with_capacity(count + 1);
    for _ in 0..=count {
        offsets.push(c.u32()? as usize);
    }
    let mut lists = Vec::with_capacity(count);
    for w in offsets.windows(2) {
        if w[1] < w[0] {
            return Err(IndexError::Malformed("offsets not monotone".to_string()));
        }
        if (w[1] - w[0]) * 4 > c.buf.len() {
            return Err(IndexError::Truncated);
        }
        let mut list = Vec::with_capacity(w[1] - w[0]);
        for _ in w[0]..w[1] {
            list.push(c.u32()?);
        }
        lists.push(list);
    }
    Ok(lists)
}

fn parse_partition(body: &[u8], graph: &Graph) -> Result<Partition, IndexError> {
    let mut c = Cursor::new(body);
    let parts = parse_ragged(&mut c, graph.n().max(1))?;
    c.done()?;
    Partition::new(graph, parts).map_err(|e| IndexError::Malformed(format!("partition: {e}")))
}

fn parse_shortcuts(
    body: &[u8],
    graph: &Graph,
    partition: &Partition,
) -> Result<ShortcutSet, IndexError> {
    let mut c = Cursor::new(body);
    let lists = parse_ragged(&mut c, partition.num_parts())?;
    c.done()?;
    if lists.len() != partition.num_parts() {
        return Err(IndexError::Malformed(format!(
            "{} shortcut lists for {} parts",
            lists.len(),
            partition.num_parts()
        )));
    }
    let m = graph.m() as u32;
    for list in &lists {
        for &e in list {
            if e >= m {
                return Err(IndexError::Malformed(format!(
                    "shortcut edge id {e} out of range (m={m})"
                )));
            }
        }
    }
    Ok(ShortcutSet::from_edge_lists(
        lists
            .into_iter()
            .map(|l| l.into_iter().map(EdgeId).collect())
            .collect(),
    ))
}

#[allow(clippy::type_complexity)]
fn parse_trees(body: &[u8], graph: &Graph) -> Result<(Vec<PartTree>, u32, u32), IndexError> {
    let mut c = Cursor::new(body);
    let count = c.u32()? as usize;
    if count > graph.n().max(1) {
        return Err(IndexError::Malformed(format!(
            "{count} trees exceeds node count"
        )));
    }
    let tree_congestion = c.u32()?;
    let tree_depth = c.u32()?;
    let mut offsets = Vec::with_capacity(count + 1);
    for _ in 0..=count {
        offsets.push(c.u32()? as usize);
    }
    let mut headers = Vec::with_capacity(count);
    for _ in 0..count {
        let part = c.u32()? as usize;
        let root: NodeId = c.u32()?;
        let depth = c.u32()?;
        let spans = match c.u32()? {
            0 => false,
            1 => true,
            tag => return Err(IndexError::Malformed(format!("bad spans tag {tag}"))),
        };
        headers.push((part, root, depth, spans));
    }
    let n = graph.n() as u32;
    let mut trees = Vec::with_capacity(count);
    for (i, (part, root, depth, spans_part)) in headers.into_iter().enumerate() {
        if offsets[i + 1] < offsets[i] {
            return Err(IndexError::Malformed(
                "tree offsets not monotone".to_string(),
            ));
        }
        if (offsets[i + 1] - offsets[i]) * 8 > body.len() {
            return Err(IndexError::Truncated);
        }
        let mut members = Vec::with_capacity(offsets[i + 1] - offsets[i]);
        for _ in offsets[i]..offsets[i + 1] {
            let v = c.u32()?;
            let p = c.u32()?;
            if v >= n || (p != u32::MAX && p >= n) {
                return Err(IndexError::Malformed(format!(
                    "tree node {v}/{p} out of range (n={n})"
                )));
            }
            members.push((v, if p == u32::MAX { None } else { Some(p) }));
        }
        trees.push(PartTree {
            part,
            root,
            members,
            depth,
            spans_part,
        });
    }
    c.done()?;
    Ok((trees, tree_congestion, tree_depth))
}

/// FNV-1a over a byte slice (same folder the bench fingerprints use).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::global_tree_shortcuts;
    use lcs_graph::{HighwayGraph, HighwayParams};

    fn fixture() -> ShortcutIndex {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 3,
            path_len: 10,
            diameter: 4,
        })
        .unwrap();
        let g = hw.graph().clone();
        let p = Partition::new(&g, hw.path_parts()).unwrap();
        let s = global_tree_shortcuts(&g, &p, 0, Some(1));
        let weights: Vec<u64> = (0..g.m() as u64).map(|e| e % 17 + 1).collect();
        ShortcutIndex::freeze(
            g,
            weights,
            p,
            s,
            IndexMeta {
                backend: "global_tree".to_string(),
                params: vec![("root".to_string(), "0".to_string())],
                seed: 42,
                certificate: Some(Quality {
                    congestion: 3,
                    dilation: 8,
                }),
                diameter: Some(4),
            },
        )
    }

    #[test]
    fn roundtrip_is_byte_exact_and_value_equal() {
        let idx = fixture();
        let bytes = idx.to_bytes();
        let back = ShortcutIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back, idx);
        assert_eq!(back.to_bytes(), bytes, "serialization is canonical");
    }

    #[test]
    fn frozen_trees_match_fresh_build() {
        let idx = fixture();
        let fresh = AggregationSetup::build(idx.graph(), idx.partition(), idx.shortcuts());
        let stored = idx.aggregation_setup();
        assert_eq!(stored.tree_congestion, fresh.tree_congestion);
        assert_eq!(stored.tree_depth, fresh.tree_depth);
        for (a, b) in stored.trees.iter().zip(fresh.trees.iter()) {
            assert_eq!(a.part, b.part);
            assert_eq!(a.root, b.root);
            assert_eq!(a.members, b.members);
            assert_eq!(a.depth, b.depth);
            assert_eq!(a.spans_part, b.spans_part);
        }
    }

    #[test]
    fn typed_errors_not_panics() {
        let idx = fixture();
        let bytes = idx.to_bytes();

        assert_eq!(ShortcutIndex::from_bytes(&[]), Err(IndexError::Truncated));
        assert_eq!(
            ShortcutIndex::from_bytes(&bytes[..bytes.len() / 2]),
            Err(IndexError::Truncated)
        );

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            ShortcutIndex::from_bytes(&bad_magic),
            Err(IndexError::BadMagic)
        );

        let mut bad_version = bytes.clone();
        bad_version[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            ShortcutIndex::from_bytes(&bad_version),
            Err(IndexError::UnsupportedVersion { found: 99 })
        );

        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x5a;
        assert!(matches!(
            ShortcutIndex::from_bytes(&flipped),
            Err(IndexError::BadChecksum { .. })
        ));
    }

    #[test]
    fn save_load_roundtrip() {
        let idx = fixture();
        let path = std::env::temp_dir().join("lcs_index_unit_test.lcsidx");
        idx.save(&path).unwrap();
        let back = ShortcutIndex::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, idx);
    }
}
