//! # lcs-shortcut
//!
//! The low-congestion shortcut **framework** (Ghaffari–Haeupler, SODA
//! 2016): part collections, shortcut sets, quality (congestion/dilation)
//! measurement, independent verification, baseline constructions, and
//! the partwise-aggregation primitive that applications build on.
//!
//! The paper-specific construction for constant-diameter graphs lives in
//! `lcs-core`; this crate is construction-agnostic.
//!
//! ## Example
//!
//! ```
//! use lcs_graph::{HighwayGraph, HighwayParams};
//! use lcs_shortcut::{measure_quality, trivial_shortcuts, DilationMode, Partition};
//!
//! let hw = HighwayGraph::new(HighwayParams {
//!     num_paths: 3, path_len: 12, diameter: 4,
//! }).unwrap();
//! let partition = Partition::new(hw.graph(), hw.path_parts()).unwrap();
//! let shortcuts = trivial_shortcuts(&partition);
//! let report = measure_quality(hw.graph(), &partition, &shortcuts, DilationMode::Exact);
//! // Without shortcuts, dilation is the path length.
//! assert_eq!(report.quality.dilation, 11);
//! ```

#![warn(missing_docs)]

pub mod aggregation;
pub mod baseline;
pub mod builder;
pub mod index;
pub mod minor;
pub mod partition;
pub mod separator;
pub mod shortcut;
pub mod verifier;

pub use aggregation::{AggregationSetup, PartTree};
pub use baseline::{global_tree_shortcuts, kitamura_style_shortcuts, trivial_shortcuts};
pub use builder::{GlobalTree, KitamuraSampling, ShortcutBuilder, Trivial};
pub use index::{IndexError, IndexMeta, ShortcutIndex, INDEX_FORMAT_VERSION};
pub use minor::{capped_growth_shortcuts, CappedGrowth, GrowthCert};
pub use partition::{Partition, PartitionError};
pub use separator::{separator_shortcuts, SeparatorCert, TreeSeparator};
pub use shortcut::{measure_quality, DilationMode, Quality, QualityReport, ShortcutSet};
pub use verifier::{verify, VerifyError};
