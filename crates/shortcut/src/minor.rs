//! Excluded-minor shortcuts via congestion-capped simultaneous growth,
//! after Ghaffari & Haeupler, *Low-Congestion Shortcuts for Graphs
//! Excluding Dense Minors* (arXiv:2008.03091), who obtain congestion
//! `O(δ·D·log n)` and dilation `O(D)` on graphs whose minors have
//! density at most `δ`.
//!
//! We instantiate their core mechanism centrally (the repo's
//! documented-substitution pattern, DESIGN.md §2): every part grows a
//! BFS tree from its leader, all parts simultaneously, under a hard
//! per-edge *claim cap* — an edge may join at most `cap` different
//! parts' trees (edges inside a part's own member set are free, since
//! `G[S_i]` is already in the augmented subgraph). Parts take turns by
//! a rotating round-robin priority (the deterministic stand-in for
//! GH's random delays). If some part cannot reach all its members
//! under the cap, the cap doubles and the growth restarts; on
//! minor-sparse families small caps suffice — the doubling point is
//! exactly the family dependence the quality bench exposes.
//!
//! The output is *self-certifying* ([`GrowthCert`]):
//!
//! * **Congestion ≤ cap + 1** — enforced by construction: `cap` claims
//!   per edge, plus at most one part owning the edge internally.
//! * **Dilation ≤ 2·(deepest member wave)** — members of a part meet at
//!   its leader through tree paths no longer than the final wave count.
//!
//! The certificate is declared via [`ShortcutBuilder::declared_bound`]
//! and enforced against measured quality by `verifier::verify` in the
//! bench and the tier-2 registry proptest.

use crate::builder::ShortcutBuilder;
use crate::partition::Partition;
use crate::shortcut::{Quality, ShortcutSet};
use lcs_graph::{bfs_distances, EdgeId, Graph, NodeId, UNREACHABLE};
use rand::RngCore;

/// Structural certificate produced by [`capped_growth_shortcuts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrowthCert {
    /// The per-edge claim cap the growth succeeded at.
    pub cap_used: u32,
    /// Number of growth attempts (cap doublings + 1).
    pub attempts: u32,
    /// Deepest wave at which any part reached one of its members.
    pub max_depth: u32,
    /// Congestion bound enforced by construction: `cap_used + 1`.
    pub congestion_bound: u32,
    /// Dilation bound through the leaders: `2 · max_depth`.
    pub dilation_bound: u32,
}

/// Builds congestion-capped growth shortcuts and their certificate,
/// starting from per-edge claim cap `initial_cap` (0 is promoted to 1)
/// and doubling on failure up to the number of parts, at which point
/// growth cannot be blocked.
pub fn capped_growth_shortcuts(
    graph: &Graph,
    partition: &Partition,
    initial_cap: u32,
) -> (ShortcutSet, GrowthCert) {
    let num_parts = partition.num_parts();
    // Waves needed with an unconstrained budget: the farthest member
    // from each leader (in full G — growth may route through anything).
    let mut max_waves = 0u32;
    for i in 0..num_parts {
        let dist = bfs_distances(graph, partition.leader(i));
        for &v in partition.part(i) {
            debug_assert_ne!(dist[v as usize], UNREACHABLE, "part spans components");
            max_waves = max_waves.max(dist[v as usize]);
        }
    }

    let cap_ceiling = (num_parts as u32).max(1);
    let mut cap = initial_cap.max(1).min(cap_ceiling);
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        if let Some((parents, max_depth)) = attempt(graph, partition, cap, max_waves) {
            let shortcuts = prune(graph, partition, &parents);
            let cert = GrowthCert {
                cap_used: cap,
                attempts,
                max_depth,
                congestion_bound: cap + 1,
                dilation_bound: (2 * max_depth).max(1),
            };
            return (shortcuts, cert);
        }
        assert!(
            cap < cap_ceiling,
            "capped growth failed with an unblockable cap"
        );
        cap = (cap * 2).min(cap_ceiling);
    }
}

/// One growth pass at a fixed cap. Returns per-part parent arrays
/// (`u32::MAX` = unreached) and the deepest member wave, or `None` if
/// some part could not cover its members.
fn attempt(
    graph: &Graph,
    partition: &Partition,
    cap: u32,
    max_waves: u32,
) -> Option<(Vec<Vec<NodeId>>, u32)> {
    let n = graph.n();
    let num_parts = partition.num_parts();
    let mut budget = vec![cap; graph.m()];
    let mut reached: Vec<Vec<bool>> = vec![vec![false; n]; num_parts];
    let mut parents: Vec<Vec<NodeId>> = vec![vec![u32::MAX; n]; num_parts];
    let mut frontier: Vec<Vec<NodeId>> = Vec::with_capacity(num_parts);
    let mut members_left: Vec<usize> = Vec::with_capacity(num_parts);
    for (i, reach) in reached.iter_mut().enumerate() {
        let leader = partition.leader(i);
        reach[leader as usize] = true;
        frontier.push(vec![leader]);
        members_left.push(partition.part(i).len() - 1);
    }
    let mut max_depth = 0u32;
    let mut outstanding: usize = members_left.iter().sum();
    for t in 1..=max_waves {
        if outstanding == 0 {
            break;
        }
        // Rotating priority: the deterministic stand-in for GH's random
        // delays — no part systematically starves the others.
        for k in 0..num_parts {
            let i = (k + (t as usize - 1)) % num_parts;
            if members_left[i] == 0 || frontier[i].is_empty() {
                continue;
            }
            let mut next = Vec::new();
            for &u in &frontier[i] {
                for (w, e) in graph.neighbors_with_edges(u) {
                    if reached[i][w as usize] {
                        continue;
                    }
                    let internal = partition.part_of(u) == Some(i as u32)
                        && partition.part_of(w) == Some(i as u32);
                    if !internal {
                        if budget[e.index()] == 0 {
                            continue;
                        }
                        budget[e.index()] -= 1;
                    }
                    reached[i][w as usize] = true;
                    parents[i][w as usize] = u;
                    next.push(w);
                    if partition.part_of(w) == Some(i as u32) {
                        members_left[i] -= 1;
                        outstanding -= 1;
                        max_depth = max_depth.max(t);
                    }
                }
            }
            frontier[i] = next;
        }
    }
    if outstanding == 0 {
        Some((parents, max_depth))
    } else {
        None
    }
}

/// Keeps only tree edges on member→leader paths, minus part-internal
/// edges (`G[S_i]` is free in the augmented subgraph).
fn prune(graph: &Graph, partition: &Partition, parents: &[Vec<NodeId>]) -> ShortcutSet {
    let mut per_part: Vec<Vec<EdgeId>> = Vec::with_capacity(parents.len());
    for (i, parent) in parents.iter().enumerate() {
        let mut visited = vec![false; graph.n()];
        let mut edges = Vec::new();
        for &mem in partition.part(i) {
            let mut v = mem;
            while !visited[v as usize] {
                visited[v as usize] = true;
                let p = parent[v as usize];
                if p == u32::MAX {
                    break; // the leader
                }
                let internal = partition.part_of(v) == Some(i as u32)
                    && partition.part_of(p) == Some(i as u32);
                if !internal {
                    edges.push(graph.edge_between(v, p).expect("tree edge exists"));
                }
                v = p;
            }
        }
        per_part.push(edges);
    }
    ShortcutSet::from_edge_lists(per_part)
}

/// The Ghaffari–Haeupler-style excluded-minor backend: congestion-capped
/// simultaneous growth with doubling (see the module docs). Fully
/// deterministic — the RNG is unused.
#[derive(Debug, Clone, Copy)]
pub struct CappedGrowth {
    /// Starting per-edge claim cap (doubles on failure).
    pub initial_cap: u32,
}

impl Default for CappedGrowth {
    fn default() -> Self {
        CappedGrowth { initial_cap: 4 }
    }
}

impl ShortcutBuilder for CappedGrowth {
    fn name(&self) -> &'static str {
        "capped_growth"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        vec![("initial_cap", self.initial_cap.to_string())]
    }

    fn build(&self, graph: &Graph, partition: &Partition, _rng: &mut dyn RngCore) -> ShortcutSet {
        capped_growth_shortcuts(graph, partition, self.initial_cap).0
    }

    fn declared_bound(&self, graph: &Graph, partition: &Partition) -> Option<Quality> {
        let (_, cert) = capped_growth_shortcuts(graph, partition, self.initial_cap);
        Some(Quality {
            congestion: cert.congestion_bound,
            dilation: cert.dilation_bound,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortcut::{measure_quality, DilationMode};
    use crate::verifier::verify;
    use lcs_graph::generators::zoo::{grid_diagonals, power_law};
    use lcs_graph::{HighwayGraph, HighwayParams};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn balls(g: &Graph, k: usize, seed: u64) -> Partition {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Partition::bfs_balls(g, k, &mut rng)
    }

    #[test]
    fn certificate_holds_on_highway() {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 4,
            path_len: 20,
            diameter: 4,
        })
        .unwrap();
        let g = hw.graph().clone();
        let p = Partition::new(&g, hw.path_parts()).unwrap();
        let (s, cert) = capped_growth_shortcuts(&g, &p, 4);
        let q = measure_quality(&g, &p, &s, DilationMode::Exact).quality;
        assert!(q.congestion <= cert.congestion_bound);
        assert!(q.dilation <= cert.dilation_bound);
        // Growth through the constant-diameter core beats the raw paths.
        let trivial = measure_quality(
            &g,
            &p,
            &crate::baseline::trivial_shortcuts(&p),
            DilationMode::Exact,
        )
        .quality;
        assert!(q.dilation < trivial.dilation);
    }

    #[test]
    fn verifies_on_planar_and_power_law() {
        let b = CappedGrowth::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = grid_diagonals(9, 9);
        let p = balls(&g, 6, 4);
        let s = b.build(&g, &p, &mut rng);
        verify(&g, &p, &s, b.declared_bound(&g, &p), DilationMode::Exact).unwrap();

        let g = power_law(150, 3, &mut rng);
        let p = balls(&g, 8, 5);
        let s = b.build(&g, &p, &mut rng);
        verify(&g, &p, &s, b.declared_bound(&g, &p), DilationMode::Exact).unwrap();
    }

    #[test]
    fn deterministic_and_rng_independent() {
        let g = grid_diagonals(7, 7);
        let p = balls(&g, 5, 9);
        let b = CappedGrowth::default();
        let mut r1 = ChaCha8Rng::seed_from_u64(1);
        let mut r2 = ChaCha8Rng::seed_from_u64(999);
        assert_eq!(b.build(&g, &p, &mut r1), b.build(&g, &p, &mut r2));
    }

    #[test]
    fn tight_cap_forces_doubling() {
        // A star-of-parts contending for central edges: with cap 1 some
        // attempt must fail on a dense-enough instance; the result is
        // still covered and certified.
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 6,
            path_len: 10,
            diameter: 3,
        })
        .unwrap();
        let g = hw.graph().clone();
        let p = Partition::new(&g, hw.path_parts()).unwrap();
        let (s, cert) = capped_growth_shortcuts(&g, &p, 1);
        assert!(cert.cap_used >= 1);
        let q = measure_quality(&g, &p, &s, DilationMode::Exact).quality;
        assert!(q.congestion <= cert.congestion_bound);
        assert!(q.dilation <= cert.dilation_bound);
    }
}
