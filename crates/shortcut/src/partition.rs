//! Part collections: vertex-disjoint connected subsets `S_1, …, S_ℓ`.
//!
//! The shortcut framework (Definition 1.1 of the paper) is always stated
//! relative to such a collection. Parts arise as MST fragments, cluster
//! decompositions, or — on the lower-bound family — the long paths.
//! Following the paper's distributed convention, each part is identified
//! by its *leader*, the maximum-id node in the part.

use lcs_graph::{bfs, is_set_connected, BfsOptions, Graph, NodeId, UNREACHABLE};
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// Error building a [`Partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A node id is out of range.
    OutOfRange {
        /// The offending node.
        node: NodeId,
    },
    /// A node appears in two parts (or twice in one part).
    Overlap {
        /// The duplicated node.
        node: NodeId,
    },
    /// A part induces a disconnected subgraph.
    NotConnected {
        /// Index of the offending part.
        part: usize,
    },
    /// A part is empty.
    EmptyPart {
        /// Index of the offending part.
        part: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::OutOfRange { node } => write!(f, "node {node} out of range"),
            PartitionError::Overlap { node } => write!(f, "node {node} appears in two parts"),
            PartitionError::NotConnected { part } => {
                write!(f, "part {part} is not connected in G")
            }
            PartitionError::EmptyPart { part } => write!(f, "part {part} is empty"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A validated collection of vertex-disjoint connected parts.
///
/// # Examples
///
/// ```
/// use lcs_graph::generators::path;
/// use lcs_shortcut::Partition;
///
/// let g = path(6);
/// let p = Partition::new(&g, vec![vec![0, 1, 2], vec![4, 5]]).unwrap();
/// assert_eq!(p.num_parts(), 2);
/// assert_eq!(p.leader(0), 2); // max id in the part
/// assert_eq!(p.part_of(3), None); // uncovered nodes are allowed
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    parts: Vec<Vec<NodeId>>,
    part_of: Vec<Option<u32>>,
    leaders: Vec<NodeId>,
}

impl Partition {
    /// Validates and builds a partition. Parts need not cover all nodes,
    /// but must be non-empty, disjoint, and induce connected subgraphs.
    ///
    /// # Errors
    ///
    /// See [`PartitionError`].
    pub fn new(graph: &Graph, mut parts: Vec<Vec<NodeId>>) -> Result<Self, PartitionError> {
        let n = graph.n();
        let mut part_of: Vec<Option<u32>> = vec![None; n];
        for (i, part) in parts.iter_mut().enumerate() {
            if part.is_empty() {
                return Err(PartitionError::EmptyPart { part: i });
            }
            part.sort_unstable();
            for &v in part.iter() {
                if v as usize >= n {
                    return Err(PartitionError::OutOfRange { node: v });
                }
                if part_of[v as usize].is_some() {
                    return Err(PartitionError::Overlap { node: v });
                }
                part_of[v as usize] = Some(i as u32);
            }
            if !is_set_connected(graph, part) {
                return Err(PartitionError::NotConnected { part: i });
            }
        }
        let leaders = parts
            .iter()
            .map(|p| *p.last().expect("non-empty part"))
            .collect();
        Ok(Partition {
            parts,
            part_of,
            leaders,
        })
    }

    /// Number of parts `ℓ`.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Members of part `i`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn part(&self, i: usize) -> &[NodeId] {
        &self.parts[i]
    }

    /// All parts.
    pub fn parts(&self) -> &[Vec<NodeId>] {
        &self.parts
    }

    /// The leader (maximum-id member) of part `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn leader(&self, i: usize) -> NodeId {
        self.leaders[i]
    }

    /// The part containing `v`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn part_of(&self, v: NodeId) -> Option<u32> {
        self.part_of[v as usize]
    }

    /// Size of the largest part.
    pub fn max_part_size(&self) -> usize {
        self.parts.iter().map(|p| p.len()).max().unwrap_or(0)
    }

    /// Total number of covered nodes.
    pub fn covered(&self) -> usize {
        self.parts.iter().map(|p| p.len()).sum()
    }

    /// Random BFS-Voronoi partition: `k` random centers grow
    /// simultaneously; every node joins the cell of the center whose
    /// BFS token reaches it first (ties to the earlier center). Cells
    /// are connected by construction, cover the component(s) containing
    /// centers, and are returned with empty cells removed.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > g.n()`.
    pub fn bfs_balls<R: Rng>(g: &Graph, k: usize, rng: &mut R) -> Partition {
        assert!(k >= 1 && k <= g.n(), "invalid center count");
        let mut centers: Vec<NodeId> = g.nodes().collect();
        centers.shuffle(rng);
        centers.truncate(k);
        // Multi-source BFS with owner propagation.
        let mut owner: Vec<Option<u32>> = vec![None; g.n()];
        let mut queue = std::collections::VecDeque::new();
        for (i, &c) in centers.iter().enumerate() {
            if owner[c as usize].is_none() {
                owner[c as usize] = Some(i as u32);
                queue.push_back(c);
            }
        }
        while let Some(u) = queue.pop_front() {
            let o = owner[u as usize];
            for &w in g.neighbors(u) {
                if owner[w as usize].is_none() {
                    owner[w as usize] = o;
                    queue.push_back(w);
                }
            }
        }
        let mut parts: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for v in g.nodes() {
            if let Some(o) = owner[v as usize] {
                parts[o as usize].push(v);
            }
        }
        parts.retain(|p| !p.is_empty());
        Partition::new(g, parts).expect("Voronoi cells are valid parts")
    }

    /// The partition whose parts are the connected components of the
    /// spanning forest described by `component_of` labels (used for MST
    /// fragments). Labels with no nodes are skipped; each label's node
    /// set must be connected in `g`.
    ///
    /// # Errors
    ///
    /// Propagates [`PartitionError`] (e.g. a label class that is not
    /// connected in `g`).
    pub fn from_labels(g: &Graph, labels: &[u32]) -> Result<Partition, PartitionError> {
        assert_eq!(labels.len(), g.n());
        let mut by_label: std::collections::BTreeMap<u32, Vec<NodeId>> = Default::default();
        for (v, &l) in labels.iter().enumerate() {
            by_label.entry(l).or_default().push(v as NodeId);
        }
        Partition::new(g, by_label.into_values().collect())
    }

    /// Radius of part `i` from its leader, *within the induced subgraph
    /// `G[S_i]`* — the quantity the paper's truncated-BFS largeness test
    /// measures.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn leader_radius(&self, g: &Graph, i: usize) -> u32 {
        let part = &self.parts[i];
        let member = |v: NodeId| self.part_of[v as usize] == Some(i as u32);
        let r = bfs(
            g,
            &[self.leaders[i]],
            &BfsOptions {
                max_depth: u32::MAX,
                node_filter: Some(&member),
            },
        );
        part.iter()
            .map(|&v| r.dist[v as usize])
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::generators::{grid, path};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn validation_rejects_bad_parts() {
        let g = path(6);
        assert!(matches!(
            Partition::new(&g, vec![vec![0, 2]]),
            Err(PartitionError::NotConnected { part: 0 })
        ));
        assert!(matches!(
            Partition::new(&g, vec![vec![0, 1], vec![1, 2]]),
            Err(PartitionError::Overlap { node: 1 })
        ));
        assert!(matches!(
            Partition::new(&g, vec![vec![9]]),
            Err(PartitionError::OutOfRange { node: 9 })
        ));
        assert!(matches!(
            Partition::new(&g, vec![vec![]]),
            Err(PartitionError::EmptyPart { part: 0 })
        ));
    }

    #[test]
    fn leaders_are_max_ids() {
        let g = path(8);
        let p = Partition::new(&g, vec![vec![2, 0, 1], vec![5, 6, 7]]).unwrap();
        assert_eq!(p.leader(0), 2);
        assert_eq!(p.leader(1), 7);
        assert_eq!(p.part(0), &[0, 1, 2]);
        assert_eq!(p.covered(), 6);
        assert_eq!(p.max_part_size(), 3);
    }

    #[test]
    fn bfs_balls_cover_and_connect() {
        let g = grid(6, 6);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let p = Partition::bfs_balls(&g, 5, &mut rng);
        assert_eq!(p.covered(), 36);
        for i in 0..p.num_parts() {
            assert!(is_set_connected(&g, p.part(i)), "part {i} connected");
        }
    }

    #[test]
    fn bfs_balls_single_center_is_whole_component() {
        let g = grid(3, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = Partition::bfs_balls(&g, 1, &mut rng);
        assert_eq!(p.num_parts(), 1);
        assert_eq!(p.part(0).len(), 9);
    }

    #[test]
    fn from_labels_groups_nodes() {
        let g = path(6);
        let labels = [0, 0, 0, 7, 7, 7];
        let p = Partition::from_labels(&g, &labels).unwrap();
        assert_eq!(p.num_parts(), 2);
        assert_eq!(p.part(1), &[3, 4, 5]);
    }

    #[test]
    fn leader_radius_of_path_part() {
        let g = path(10);
        let p = Partition::new(&g, vec![vec![0, 1, 2, 3, 4]]).unwrap();
        // Leader is 4; radius within the part is 4 (to node 0).
        assert_eq!(p.leader_radius(&g, 0), 4);
    }
}
