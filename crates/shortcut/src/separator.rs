//! Graph-parameter shortcuts via a balanced-separator hierarchy, after
//! Kitamura, Kitagawa, Otachi & Izumi, *Low-Congestion Shortcut and
//! Graph Parameters* (arXiv:1908.09473), who obtain quality
//! `O(w·D·log n)` on treewidth-`w` graphs from tree decompositions.
//!
//! We instantiate their decomposition template centrally (the repo's
//! documented-substitution pattern, DESIGN.md §2): a min-degree
//! elimination order yields a tree decomposition, whose weighted
//! centroid bag is a balanced separator; recursing on the remaining
//! components gives a cluster hierarchy of depth `O(log n)`. Each part
//! is *homed* at the deepest cluster that fully contains it, and its
//! shortcut `H_i` is the home cluster's BFS tree pruned to the part
//! members.
//!
//! Two structural theorems make the output *self-certifying*, and
//! [`separator_shortcuts`] returns the resulting [`SeparatorCert`]:
//!
//! * **Congestion.** A part homed at cluster `C` is connected inside
//!   `G[C]` but inside no child, so it must intersect `sep(C)`; parts
//!   being disjoint, at most `|sep(C)|` parts are homed at `C`. Any
//!   edge is used only by parts homed along one root path, so
//!   congestion ≤ 1 + max root-path sum of homed-part counts
//!   (`O(w·log n)` when separators have size `O(w)`).
//! * **Dilation.** Members of a part homed at `C` meet at the root of
//!   `C`'s BFS tree, so dilation ≤ 2·ecc of that root in `G[C]`.
//!
//! The certificate is computed from the *actual* hierarchy (honest even
//! when the elimination degenerates), declared via
//! [`ShortcutBuilder::declared_bound`], and enforced against measured
//! quality by `verifier::verify` in the bench and the tier-2 registry
//! proptest. On graphs whose elimination width explodes (expanders),
//! the build falls back to balanced BFS-layer separators and the
//! certificate grows accordingly — the bench table then *shows* the
//! family dependence instead of hiding it.

use crate::builder::ShortcutBuilder;
use crate::partition::Partition;
use crate::shortcut::{Quality, ShortcutSet};
use lcs_graph::{bfs, connected_components, BfsOptions, EdgeId, Graph, NodeId};
use rand::RngCore;
use std::collections::{BTreeSet, HashMap};

/// Structural certificate produced by [`separator_shortcuts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeparatorCert {
    /// Largest separator in the hierarchy (≈ treewidth + 1 when the
    /// elimination succeeds).
    pub width: u32,
    /// Hierarchy depth (root cluster = 1).
    pub depth: u32,
    /// Elimination width of the top-level cluster, when the min-degree
    /// elimination stayed under the cap (`None` = BFS-layer fallback).
    pub elimination_width: Option<u32>,
    /// Structural congestion bound: 1 + max root-path homed-part sum.
    pub congestion_bound: u32,
    /// Structural dilation bound: 2 · max root eccentricity over
    /// clusters that home at least one part.
    pub dilation_bound: u32,
}

struct Cluster {
    /// Member nodes, sorted.
    nodes: Vec<NodeId>,
    /// Separator nodes (sorted subset of `nodes`); the whole cluster
    /// for leaves.
    sep: Vec<NodeId>,
    /// Arena index of the parent cluster.
    parent: Option<usize>,
    /// Hierarchy depth, root = 1.
    depth: u32,
    /// node → child arena index, for the home-cluster walk.
    child_of: HashMap<NodeId, usize>,
    /// BFS tree of `G[cluster]`: node → tree parent.
    tree_parent: HashMap<NodeId, NodeId>,
    /// Tree root (smallest separator node).
    root: NodeId,
    /// Eccentricity of `root` in `G[cluster]`.
    ecc: u32,
    /// Number of parts homed here.
    homed: u32,
}

/// Builds separator-hierarchy shortcuts and their structural
/// certificate. `width_cap` bounds the min-degree elimination (`None` =
/// `max(8, ⌈√n⌉)`); clusters whose elimination exceeds the cap use
/// balanced BFS-layer separators instead.
pub fn separator_shortcuts(
    graph: &Graph,
    partition: &Partition,
    width_cap: Option<usize>,
) -> (ShortcutSet, SeparatorCert) {
    let n = graph.n();
    let cap = width_cap.unwrap_or_else(|| 8.max((n as f64).sqrt().ceil() as usize));

    // ------------------------------------------------------------------
    // 1. Build the cluster hierarchy.
    let comps = connected_components(graph);
    let mut clusters: Vec<Cluster> = Vec::new();
    let mut top_of_comp: Vec<usize> = Vec::with_capacity(comps.num_components);
    let mut stack: Vec<usize> = Vec::new();
    for c in 0..comps.num_components as u32 {
        let idx = clusters.len();
        clusters.push(Cluster {
            nodes: comps.members(c),
            sep: Vec::new(),
            parent: None,
            depth: 1,
            child_of: HashMap::new(),
            tree_parent: HashMap::new(),
            root: 0,
            ecc: 0,
            homed: 0,
        });
        top_of_comp.push(idx);
        stack.push(idx);
    }
    let mut elimination_width: Option<u32> = Some(0);
    let mut in_cluster = vec![false; n];
    while let Some(ci) = stack.pop() {
        let nodes = clusters[ci].nodes.clone();
        for &v in &nodes {
            in_cluster[v as usize] = true;
        }
        let (sep, elim_w) = if nodes.len() <= 2 {
            (nodes.clone(), Some(nodes.len().saturating_sub(1) as u32))
        } else {
            choose_separator(graph, &nodes, &in_cluster, cap)
        };
        if clusters[ci].parent.is_none() {
            // Top-level elimination width (worst component); None once
            // any component fell back to BFS layers.
            elimination_width = match (elimination_width, elim_w) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            };
        }
        // BFS tree of G[cluster] rooted at the smallest separator node.
        let root = sep[0];
        let filter = |v: NodeId| in_cluster[v as usize];
        let r = bfs(
            graph,
            &[root],
            &BfsOptions {
                max_depth: u32::MAX,
                node_filter: Some(&filter),
            },
        );
        let mut tree_parent = HashMap::with_capacity(nodes.len());
        for &v in &nodes {
            if let Some(p) = r.parent[v as usize] {
                tree_parent.insert(v, p);
            }
        }
        let ecc = r.max_depth();
        // Children: components of G[cluster] − sep.
        let sep_set: BTreeSet<NodeId> = sep.iter().copied().collect();
        let mut child_of: HashMap<NodeId, usize> = HashMap::new();
        let mut seen = vec![false; n];
        let child_depth = clusters[ci].depth + 1;
        let mut children: Vec<Vec<NodeId>> = Vec::new();
        for &v in &nodes {
            if sep_set.contains(&v) || seen[v as usize] {
                continue;
            }
            let cf = |w: NodeId| in_cluster[w as usize] && !sep_set.contains(&w);
            let cr = bfs(
                graph,
                &[v],
                &BfsOptions {
                    max_depth: u32::MAX,
                    node_filter: Some(&cf),
                },
            );
            let mut members: Vec<NodeId> = nodes
                .iter()
                .copied()
                .filter(|&w| cr.reached(w) && !sep_set.contains(&w))
                .collect();
            members.sort_unstable();
            for &w in &members {
                seen[w as usize] = true;
            }
            children.push(members);
        }
        for members in children {
            let idx = clusters.len();
            for &w in &members {
                child_of.insert(w, idx);
            }
            clusters.push(Cluster {
                nodes: members,
                sep: Vec::new(),
                parent: Some(ci),
                depth: child_depth,
                child_of: HashMap::new(),
                tree_parent: HashMap::new(),
                root: 0,
                ecc: 0,
                homed: 0,
            });
            stack.push(idx);
        }
        for &v in &nodes {
            in_cluster[v as usize] = false;
        }
        let cl = &mut clusters[ci];
        cl.sep = sep;
        cl.root = root;
        cl.ecc = ecc;
        cl.tree_parent = tree_parent;
        cl.child_of = child_of;
    }

    // ------------------------------------------------------------------
    // 2. Home each part at the deepest cluster containing it, then
    //    prune that cluster's tree to the part members.
    let mut per_part: Vec<Vec<EdgeId>> = Vec::with_capacity(partition.num_parts());
    for i in 0..partition.num_parts() {
        let members = partition.part(i);
        let mut c = top_of_comp[comps.label[members[0] as usize] as usize];
        loop {
            let cl = &clusters[c];
            let sep_set: BTreeSet<NodeId> = cl.sep.iter().copied().collect();
            if members.iter().any(|v| sep_set.contains(v)) {
                break;
            }
            let child = cl.child_of.get(&members[0]).copied();
            match child {
                Some(ch) if members.iter().all(|v| cl.child_of.get(v) == Some(&ch)) => c = ch,
                // Theory says a part missing the separator sits in one
                // child; if it ever doesn't, home it here — the
                // certificate is computed from actual homed counts, so
                // it stays honest.
                _ => break,
            }
        }
        clusters[c].homed += 1;
        // Prune: union of member→root tree paths, minus part-internal
        // edges (G[S_i] is free in the augmented subgraph).
        let cl = &clusters[c];
        let mut edges = Vec::new();
        let mut visited: BTreeSet<NodeId> = BTreeSet::new();
        for &m in members {
            let mut v = m;
            while visited.insert(v) {
                let Some(&p) = cl.tree_parent.get(&v) else {
                    break;
                };
                let internal = partition.part_of(v) == Some(i as u32)
                    && partition.part_of(p) == Some(i as u32);
                if !internal {
                    edges.push(graph.edge_between(v, p).expect("tree edge exists"));
                }
                v = p;
            }
        }
        per_part.push(edges);
    }

    // ------------------------------------------------------------------
    // 3. Certificate from the actual hierarchy.
    let mut width = 0u32;
    let mut depth = 0u32;
    let mut cum = vec![0u32; clusters.len()];
    let mut congestion = 1u32;
    let mut dilation = 1u32;
    // The arena is in discovery order: parents precede children.
    for (idx, cl) in clusters.iter().enumerate() {
        width = width.max(cl.sep.len() as u32);
        depth = depth.max(cl.depth);
        cum[idx] = cl.homed + cl.parent.map_or(0, |p| cum[p]);
        if cl.homed > 0 {
            congestion = congestion.max(1 + cum[idx]);
            dilation = dilation.max(2 * cl.ecc.max(1));
        }
    }
    let cert = SeparatorCert {
        width,
        depth,
        elimination_width,
        congestion_bound: congestion,
        dilation_bound: dilation,
    };
    (ShortcutSet::from_edge_lists(per_part), cert)
}

/// Picks a balanced separator of `G[nodes]`: the centroid bag of a
/// min-degree elimination tree decomposition when the elimination stays
/// under `cap`, otherwise a balanced BFS layer. Returns the separator
/// and the elimination width (when under the cap).
fn choose_separator(
    graph: &Graph,
    nodes: &[NodeId],
    in_cluster: &[bool],
    cap: usize,
) -> (Vec<NodeId>, Option<u32>) {
    if let Some((bags, order, elim_w)) = min_degree_elimination(graph, nodes, cap) {
        let nc = nodes.len();
        // Decomposition tree over elimination positions: the parent of
        // position p is the earliest-eliminated member of its bag.
        let mut parent = vec![usize::MAX; nc];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); nc];
        for p in 0..nc - 1 {
            let q = bags[p]
                .iter()
                .skip(1) // bags[p][0] is the eliminated vertex's position itself
                .copied()
                .min()
                .unwrap_or(p + 1);
            parent[p] = q;
            children[q].push(p);
        }
        // Subtree weights (1 per vertex): arena order is by position and
        // parents always have larger positions, so ascending order is a
        // valid post-order.
        let mut weight = vec![1usize; nc];
        for p in 0..nc - 1 {
            let q = parent[p];
            weight[q] += weight[p];
        }
        // Centroid: minimize the largest piece left by removing the bag.
        let mut best = (usize::MAX, 0usize);
        for p in 0..nc {
            let up = nc - weight[p];
            let down = children[p].iter().map(|&c| weight[c]).max().unwrap_or(0);
            let worst = up.max(down);
            if worst < best.0 {
                best = (worst, p);
            }
        }
        // Bags store elimination positions; translate position → local
        // index → node id.
        let mut sep: Vec<NodeId> = bags[best.1].iter().map(|&q| nodes[order[q]]).collect();
        sep.sort_unstable();
        return (sep, Some(elim_w));
    }
    // Fallback: balanced BFS layer from a far node.
    let filter = |v: NodeId| in_cluster[v as usize];
    let opts = BfsOptions {
        max_depth: u32::MAX,
        node_filter: Some(&filter),
    };
    let r0 = bfs(graph, &[nodes[0]], &opts);
    let far = *nodes
        .iter()
        .max_by_key(|&&v| (r0.dist[v as usize], std::cmp::Reverse(v)))
        .unwrap();
    let r = bfs(graph, &[far], &opts);
    let ecc = r.max_depth();
    if ecc == 0 {
        return (nodes.to_vec(), None);
    }
    let mut best = (usize::MAX, 1u32);
    for layer in 1..=ecc {
        let below = nodes
            .iter()
            .filter(|&&v| r.dist[v as usize] < layer)
            .count();
        let above = nodes
            .iter()
            .filter(|&&v| r.dist[v as usize] > layer)
            .count();
        let worst = below.max(above);
        if worst < best.0 {
            best = (worst, layer);
        }
    }
    let sep: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|&v| r.dist[v as usize] == best.1)
        .collect();
    (sep, None)
}

/// Min-degree elimination of `G[nodes]` with fill, aborting when the
/// minimum degree exceeds `cap`. Returns per-elimination-position bags
/// as *positions* (`bags[p][0] == p`, rest are later positions), the
/// position → local-index order, and the elimination width.
fn min_degree_elimination(
    graph: &Graph,
    nodes: &[NodeId],
    cap: usize,
) -> Option<(Vec<Vec<usize>>, Vec<usize>, u32)> {
    let nc = nodes.len();
    let mut local: HashMap<NodeId, usize> = HashMap::with_capacity(nc);
    for (i, &v) in nodes.iter().enumerate() {
        local.insert(v, i);
    }
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nc];
    for (i, &v) in nodes.iter().enumerate() {
        for &w in graph.neighbors(v) {
            if let Some(&j) = local.get(&w) {
                adj[i].insert(j);
            }
        }
    }
    let mut eliminated = vec![false; nc];
    let mut pos_of = vec![usize::MAX; nc];
    let mut order: Vec<usize> = Vec::with_capacity(nc);
    let mut raw_bags: Vec<Vec<usize>> = Vec::with_capacity(nc); // local indices
    let mut width = 0usize;
    for _p in 0..nc {
        let v = (0..nc)
            .filter(|&i| !eliminated[i])
            .min_by_key(|&i| (adj[i].len(), i))?;
        let deg = adj[v].len();
        if deg > cap {
            return None;
        }
        width = width.max(deg);
        let nbrs: Vec<usize> = adj[v].iter().copied().collect();
        let mut bag = vec![v];
        bag.extend(nbrs.iter().copied());
        raw_bags.push(bag);
        pos_of[v] = order.len();
        order.push(v);
        eliminated[v] = true;
        for (a, &x) in nbrs.iter().enumerate() {
            adj[x].remove(&v);
            for &y in &nbrs[a + 1..] {
                adj[x].insert(y);
                adj[y].insert(x);
            }
        }
    }
    // Translate bags from local indices to elimination positions.
    let bags: Vec<Vec<usize>> = raw_bags
        .iter()
        .map(|bag| bag.iter().map(|&x| pos_of[x]).collect())
        .collect();
    Some((bags, order, width as u32))
}

/// The Kitamura-style graph-parameter backend: separator-hierarchy
/// shortcuts with a per-instance structural certificate (see the module
/// docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeSeparator {
    /// Elimination width cap (`None` = `max(8, ⌈√n⌉)`).
    pub width_cap: Option<usize>,
}

impl ShortcutBuilder for TreeSeparator {
    fn name(&self) -> &'static str {
        "tree_separator"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        vec![(
            "width_cap",
            self.width_cap
                .map_or_else(|| "auto".to_string(), |c| c.to_string()),
        )]
    }

    fn build(&self, graph: &Graph, partition: &Partition, _rng: &mut dyn RngCore) -> ShortcutSet {
        separator_shortcuts(graph, partition, self.width_cap).0
    }

    fn declared_bound(&self, graph: &Graph, partition: &Partition) -> Option<Quality> {
        let (_, cert) = separator_shortcuts(graph, partition, self.width_cap);
        Some(Quality {
            congestion: cert.congestion_bound,
            dilation: cert.dilation_bound,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortcut::{measure_quality, DilationMode};
    use crate::verifier::verify;
    use lcs_graph::generators::{grid_diagonals, zoo::k_tree};
    use lcs_graph::{HighwayGraph, HighwayParams};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn balls(g: &Graph, k: usize, seed: u64) -> Partition {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Partition::bfs_balls(g, k, &mut rng)
    }

    #[test]
    fn certificate_holds_on_k_tree() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = k_tree(80, 3, &mut rng);
        let p = balls(&g, 6, 8);
        let (s, cert) = separator_shortcuts(&g, &p, None);
        // Elimination recovers the k-tree width exactly.
        assert_eq!(cert.elimination_width, Some(3));
        assert!(cert.width <= 4, "width {} too large", cert.width);
        let q = measure_quality(&g, &p, &s, DilationMode::Exact).quality;
        assert!(q.congestion <= cert.congestion_bound);
        assert!(q.dilation <= cert.dilation_bound);
    }

    #[test]
    fn verifies_on_grid_and_highway() {
        let g = grid_diagonals(8, 8);
        let p = balls(&g, 5, 3);
        let b = TreeSeparator::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let s = b.build(&g, &p, &mut rng);
        verify(&g, &p, &s, b.declared_bound(&g, &p), DilationMode::Exact).unwrap();

        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 3,
            path_len: 12,
            diameter: 4,
        })
        .unwrap();
        let g = hw.graph().clone();
        let p = Partition::new(&g, hw.path_parts()).unwrap();
        let s = b.build(&g, &p, &mut rng);
        verify(&g, &p, &s, b.declared_bound(&g, &p), DilationMode::Exact).unwrap();
    }

    #[test]
    fn deterministic_across_builds() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = k_tree(50, 2, &mut rng);
        let p = balls(&g, 4, 10);
        let (s1, c1) = separator_shortcuts(&g, &p, None);
        let (s2, c2) = separator_shortcuts(&g, &p, None);
        assert_eq!(s1, s2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn fallback_on_dense_cluster() {
        // A clique blows past any small cap; the BFS-layer fallback must
        // still produce a valid hierarchy.
        let g = lcs_graph::complete(12);
        let p = balls(&g, 3, 2);
        let (s, cert) = separator_shortcuts(&g, &p, Some(2));
        assert_eq!(cert.elimination_width, None);
        let q = measure_quality(&g, &p, &s, DilationMode::Exact).quality;
        assert!(q.congestion <= cert.congestion_bound);
        assert!(q.dilation <= cert.dilation_bound);
    }
}
