//! Shortcut sets and their quality (congestion + dilation) measurement.
//!
//! Definition 1.1 (Ghaffari–Haeupler): a `(d, c)`-shortcut of `G` and
//! `S = {S_1, …, S_ℓ}` assigns each part a subgraph `H_i ⊆ G` such that
//! the diameter of `G[S_i] ∪ H_i` is at most `d` and every edge belongs
//! to at most `c` of the augmented subgraphs.
//!
//! ### Measurement conventions
//!
//! * **Congestion** is exact: for each graph edge we count the augmented
//!   subgraphs `G[S_i] ∪ H_i` containing it (`G[S_i]` edges count —
//!   disjointness makes that contribution ≤ 1 per edge).
//! * **Dilation** is reported as the maximum over parts of the maximum
//!   distance *between part members* inside `G[S_i] ∪ H_i`. For the
//!   tree-shaped shortcuts the constructions emit this coincides with
//!   the subgraph diameter up to a factor ≤ 2; for raw sampled sets
//!   (whose stray edges may be disconnected from `S_i`) it is the
//!   quantity the paper's Theorem 3.1 actually bounds
//!   (`dist_H(s, t)` for `s, t ∈ S_j`).

use crate::partition::Partition;
use lcs_graph::{EdgeId, EdgeSubgraph, Graph};
use std::fmt;

/// Per-part shortcut edge sets `H_1, …, H_ℓ`, aligned with a
/// [`Partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortcutSet {
    per_part: Vec<Vec<EdgeId>>,
}

impl ShortcutSet {
    /// An empty shortcut (`H_i = ∅`) for `num_parts` parts.
    pub fn empty(num_parts: usize) -> Self {
        ShortcutSet {
            per_part: vec![Vec::new(); num_parts],
        }
    }

    /// Builds from per-part edge lists (deduplicated internally).
    pub fn from_edge_lists(mut per_part: Vec<Vec<EdgeId>>) -> Self {
        for edges in &mut per_part {
            edges.sort_unstable();
            edges.dedup();
        }
        ShortcutSet { per_part }
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.per_part.len()
    }

    /// Shortcut edges of part `i` (sorted, deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn edges(&self, i: usize) -> &[EdgeId] {
        &self.per_part[i]
    }

    /// Adds an edge to `H_i` (keeps the list sorted and deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn add(&mut self, i: usize, e: EdgeId) {
        let list = &mut self.per_part[i];
        if let Err(pos) = list.binary_search(&e) {
            list.insert(pos, e);
        }
    }

    /// Total shortcut edges across parts (with multiplicity).
    pub fn total_edges(&self) -> usize {
        self.per_part.iter().map(|p| p.len()).sum()
    }

    /// Edge set of `G[S_i]`: edges with both endpoints in part `i`.
    pub fn part_internal_edges(graph: &Graph, partition: &Partition, i: usize) -> Vec<EdgeId> {
        let mut edges = Vec::new();
        for &v in partition.part(i) {
            for (w, e) in graph.neighbors_with_edges(v) {
                if v < w && partition.part_of(w) == Some(i as u32) {
                    edges.push(e);
                }
            }
        }
        edges.sort_unstable();
        edges
    }

    /// Materializes the augmented subgraph `G[S_i] ∪ H_i` (part members
    /// forced present even when isolated).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for the partition or shortcut set.
    pub fn augmented_subgraph(
        &self,
        graph: &Graph,
        partition: &Partition,
        i: usize,
    ) -> EdgeSubgraph {
        let mut edges = Self::part_internal_edges(graph, partition, i);
        edges.extend_from_slice(&self.per_part[i]);
        edges.sort_unstable();
        edges.dedup();
        EdgeSubgraph::new(graph, &edges, partition.part(i))
    }
}

/// How to compute dilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DilationMode {
    /// Exact max pairwise part-member distance (BFS from every member).
    Exact,
    /// Double-sweep bracket; the reported dilation is the *upper* end
    /// (2 × leader radius), so bound checks remain sound.
    Estimate,
}

/// The two quality components of Definition 1.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quality {
    /// Max number of augmented subgraphs sharing one edge.
    pub congestion: u32,
    /// Max over parts of the part-member diameter of `G[S_i] ∪ H_i`.
    pub dilation: u32,
}

impl Quality {
    /// `c + d`, the scalar the paper's bounds are stated in.
    pub fn total(&self) -> u64 {
        self.congestion as u64 + self.dilation as u64
    }
}

impl fmt::Display for Quality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "c={} d={} (c+d={})",
            self.congestion,
            self.dilation,
            self.total()
        )
    }
}

/// Full quality report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualityReport {
    /// Aggregate quality.
    pub quality: Quality,
    /// Dilation of each part.
    pub per_part_dilation: Vec<u32>,
    /// Dilation lower bounds (equal to dilation in exact mode).
    pub per_part_dilation_lower: Vec<u32>,
    /// Congestion of every edge (indexed by [`EdgeId`]).
    pub per_edge_congestion: Vec<u32>,
}

impl QualityReport {
    /// Mean per-edge congestion over edges with nonzero load.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcs_shortcut::{Quality, QualityReport};
    ///
    /// let r = QualityReport {
    ///     quality: Quality { congestion: 2, dilation: 2 },
    ///     per_part_dilation: vec![2, 1],
    ///     per_part_dilation_lower: vec![2, 1],
    ///     per_edge_congestion: vec![1, 1, 2, 1, 0],
    /// };
    /// // Four loaded edges carrying total load 5; the idle edge is
    /// // ignored, so the mean load is 5/4.
    /// assert_eq!(r.mean_loaded_congestion(), 1.25);
    /// ```
    pub fn mean_loaded_congestion(&self) -> f64 {
        let loaded: Vec<u32> = self
            .per_edge_congestion
            .iter()
            .copied()
            .filter(|&c| c > 0)
            .collect();
        if loaded.is_empty() {
            return 0.0;
        }
        loaded.iter().map(|&c| c as f64).sum::<f64>() / loaded.len() as f64
    }
}

/// Measures the quality of `shortcuts` for `partition` on `graph`.
///
/// Dilation per part is `u32::MAX` if two part members are disconnected
/// in the augmented subgraph (cannot happen for valid partitions, whose
/// parts are connected in `G`).
///
/// # Examples
///
/// A hand-checkable 5-node instance: the path `0–1–2–3–4` with chord
/// `1–3`, parts `{0, 1, 2}` and `{3, 4}`, and shortcuts `H_0 = {1–3}`,
/// `H_1 = {1–3, 2–3}`:
///
/// ```
/// use lcs_graph::Graph;
/// use lcs_shortcut::{measure_quality, DilationMode, Partition, ShortcutSet};
///
/// let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]).unwrap();
/// let p = Partition::new(&g, vec![vec![0, 1, 2], vec![3, 4]]).unwrap();
/// let chord = g.edge_between(1, 3).unwrap();
/// let e23 = g.edge_between(2, 3).unwrap();
/// let s = ShortcutSet::from_edge_lists(vec![vec![chord], vec![chord, e23]]);
///
/// let r = measure_quality(&g, &p, &s, DilationMode::Exact);
/// // The chord serves both parts; every other edge serves exactly one.
/// assert_eq!(r.quality.congestion, 2);
/// // Part 0's worst pair is 0 ↔ 2 (two hops); part 1 has edge 3–4.
/// assert_eq!(r.per_part_dilation, vec![2, 1]);
/// assert_eq!(r.quality.dilation, 2);
/// ```
///
/// # Panics
///
/// Panics if `shortcuts.num_parts() != partition.num_parts()`.
pub fn measure_quality(
    graph: &Graph,
    partition: &Partition,
    shortcuts: &ShortcutSet,
    mode: DilationMode,
) -> QualityReport {
    assert_eq!(shortcuts.num_parts(), partition.num_parts());
    let mut per_edge = vec![0u32; graph.m()];
    let mut per_part_dilation = Vec::with_capacity(partition.num_parts());
    let mut per_part_lower = Vec::with_capacity(partition.num_parts());
    for i in 0..partition.num_parts() {
        // Congestion: union of G[S_i] and H_i edges.
        let mut edges = ShortcutSet::part_internal_edges(graph, partition, i);
        edges.extend_from_slice(shortcuts.edges(i));
        edges.sort_unstable();
        edges.dedup();
        for &e in &edges {
            per_edge[e.index()] += 1;
        }
        // Dilation.
        let sub = shortcuts.augmented_subgraph(graph, partition, i);
        let members = partition.part(i);
        let (lower, upper) = match mode {
            DilationMode::Exact => {
                let d = sub.max_pairwise_distance(members).unwrap_or(0);
                (d, d)
            }
            DilationMode::Estimate => sub
                .estimate_pairwise_distance(members, partition.leader(i))
                .unwrap_or((0, 0)),
        };
        per_part_dilation.push(upper);
        per_part_lower.push(lower);
    }
    let congestion = per_edge.iter().copied().max().unwrap_or(0);
    let dilation = per_part_dilation.iter().copied().max().unwrap_or(0);
    QualityReport {
        quality: Quality {
            congestion,
            dilation,
        },
        per_part_dilation,
        per_part_dilation_lower: per_part_lower,
        per_edge_congestion: per_edge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::generators::path;
    use lcs_graph::HighwayGraph;
    use lcs_graph::HighwayParams;

    fn fixture() -> (Graph, Partition) {
        // Path 0..9 with two parts.
        let g = path(10);
        let p = Partition::new(&g, vec![vec![0, 1, 2, 3, 4], vec![5, 6, 7, 8, 9]]).unwrap();
        (g, p)
    }

    #[test]
    fn empty_shortcut_dilation_is_part_diameter() {
        let (g, p) = fixture();
        let s = ShortcutSet::empty(2);
        let r = measure_quality(&g, &p, &s, DilationMode::Exact);
        assert_eq!(r.quality.dilation, 4);
        // Intra-part edges give congestion 1.
        assert_eq!(r.quality.congestion, 1);
        assert_eq!(r.per_part_dilation, vec![4, 4]);
    }

    #[test]
    fn shortcut_edge_reduces_dilation_on_highway() {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 2,
            path_len: 12,
            diameter: 4,
        })
        .unwrap();
        let g = hw.graph();
        let p = Partition::new(g, hw.path_parts()).unwrap();
        let empty = ShortcutSet::empty(2);
        let base = measure_quality(g, &p, &empty, DilationMode::Exact);
        assert_eq!(base.quality.dilation, 11);

        // Give part 0 all leaf and tree edges: dilation collapses to O(D).
        let mut h0: Vec<EdgeId> = Vec::new();
        for c in 0..12 {
            let leaf = hw.column_leaf(c);
            h0.push(g.edge_between(leaf, hw.path_node(0, c)).unwrap());
            for (w, e) in g.neighbors_with_edges(leaf) {
                if w >= hw.highway_first() {
                    h0.push(e);
                }
            }
        }
        let s = ShortcutSet::from_edge_lists(vec![h0, Vec::new()]);
        let r = measure_quality(g, &p, &s, DilationMode::Exact);
        assert!(
            r.per_part_dilation[0] <= 6,
            "tree shortcut should give O(D) dilation, got {}",
            r.per_part_dilation[0]
        );
        assert_eq!(r.per_part_dilation[1], 11, "part 1 untouched");
        // Overall dilation is the max over parts, so part 1 dominates.
        assert_eq!(r.quality.dilation, 11);
    }

    #[test]
    fn congestion_counts_shared_edges() {
        let (g, p) = fixture();
        // Both parts get the same middle edge 4-5 in their H_i.
        let mid = g.edge_between(4, 5).unwrap();
        let s = ShortcutSet::from_edge_lists(vec![vec![mid], vec![mid]]);
        let r = measure_quality(&g, &p, &s, DilationMode::Exact);
        assert_eq!(r.per_edge_congestion[mid.index()], 2);
        assert_eq!(r.quality.congestion, 2);
        // The shared edge joins the two parts into one subgraph each:
        // part 0's subgraph now includes node 5.
        let sub = s.augmented_subgraph(&g, &p, 0);
        assert_eq!(sub.distance(4, 5), Some(1));
    }

    #[test]
    fn internal_edges_not_double_counted_with_hi() {
        let (g, p) = fixture();
        let internal = g.edge_between(0, 1).unwrap();
        let s = ShortcutSet::from_edge_lists(vec![vec![internal], vec![]]);
        let r = measure_quality(&g, &p, &s, DilationMode::Exact);
        // Edge 0-1 is in G[S_0] and in H_0: one subgraph, congestion 1.
        assert_eq!(r.per_edge_congestion[internal.index()], 1);
    }

    #[test]
    fn estimate_mode_is_sound_upper_bound() {
        let (g, p) = fixture();
        let s = ShortcutSet::empty(2);
        let exact = measure_quality(&g, &p, &s, DilationMode::Exact);
        let est = measure_quality(&g, &p, &s, DilationMode::Estimate);
        for i in 0..2 {
            assert!(est.per_part_dilation[i] >= exact.per_part_dilation[i]);
            assert!(est.per_part_dilation_lower[i] <= exact.per_part_dilation[i]);
        }
    }

    #[test]
    fn add_and_dedup() {
        let (g, _) = fixture();
        let mut s = ShortcutSet::empty(1);
        let e = g.edge_between(2, 3).unwrap();
        s.add(0, e);
        s.add(0, e);
        assert_eq!(s.edges(0), &[e]);
        assert_eq!(s.total_edges(), 1);
    }

    #[test]
    fn five_node_hand_computed_exact_answer() {
        // Path 0–1–2–3–4 plus chord 1–3; parts {0,1,2} and {3,4};
        // H_0 = {1–3}, H_1 = {1–3, 2–3}. Every number below is computed
        // by hand from Definition 1.1.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]).unwrap();
        let p = Partition::new(&g, vec![vec![0, 1, 2], vec![3, 4]]).unwrap();
        let chord = g.edge_between(1, 3).unwrap();
        let e23 = g.edge_between(2, 3).unwrap();
        let s = ShortcutSet::from_edge_lists(vec![vec![chord], vec![chord, e23]]);
        let r = measure_quality(&g, &p, &s, DilationMode::Exact);
        // Loads: 0–1 and 1–2 are internal to part 0, 3–4 internal to
        // part 1, 2–3 is in H_1 only, and the chord is in H_0 and H_1.
        let mut expected = vec![0u32; 5];
        expected[g.edge_between(0, 1).unwrap().index()] = 1;
        expected[g.edge_between(1, 2).unwrap().index()] = 1;
        expected[chord.index()] = 2;
        expected[e23.index()] = 1;
        expected[g.edge_between(3, 4).unwrap().index()] = 1;
        assert_eq!(r.per_edge_congestion, expected);
        // Part 0: worst pair 0 ↔ 2 at distance 2 (the chord adds node 3
        // but no shorter 0–2 route). Part 1: members 3, 4 at distance 1.
        assert_eq!(r.per_part_dilation, vec![2, 1]);
        assert_eq!(r.per_part_dilation_lower, vec![2, 1]);
        assert_eq!(
            r.quality,
            Quality {
                congestion: 2,
                dilation: 2
            }
        );
        // Five edges all loaded: (1+1+2+1+1)/5.
        assert_eq!(r.mean_loaded_congestion(), 1.2);
    }

    #[test]
    fn quality_total() {
        let q = Quality {
            congestion: 3,
            dilation: 9,
        };
        assert_eq!(q.total(), 12);
        assert_eq!(format!("{q}"), "c=3 d=9 (c+d=12)");
    }
}
