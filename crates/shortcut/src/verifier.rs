//! Independent validity checking of shortcut sets.

use crate::partition::Partition;
use crate::shortcut::{measure_quality, DilationMode, Quality, QualityReport, ShortcutSet};
use lcs_graph::Graph;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Shortcut set and partition disagree on part count.
    PartCountMismatch {
        /// Parts in the shortcut set.
        shortcuts: usize,
        /// Parts in the partition.
        partition: usize,
    },
    /// An edge id exceeds the graph's edge count.
    EdgeOutOfRange {
        /// Offending part.
        part: usize,
        /// The raw edge index.
        edge: u32,
    },
    /// Measured quality exceeds the claimed bound.
    QualityExceeded {
        /// What was claimed.
        claimed: Quality,
        /// What was measured.
        measured: Quality,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::PartCountMismatch {
                shortcuts,
                partition,
            } => write!(
                f,
                "shortcut set has {shortcuts} parts, partition has {partition}"
            ),
            VerifyError::EdgeOutOfRange { part, edge } => {
                write!(f, "part {part} references nonexistent edge {edge}")
            }
            VerifyError::QualityExceeded { claimed, measured } => {
                write!(f, "claimed {claimed} but measured {measured}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies structural validity of a shortcut set and (optionally) a
/// claimed quality bound; returns the measured report on success.
///
/// A claim is violated only if *either* component is exceeded: a valid
/// `(c, d)` shortcut is also valid for any `(c' ≥ c, d' ≥ d)`.
///
/// # Errors
///
/// See [`VerifyError`].
pub fn verify(
    graph: &Graph,
    partition: &Partition,
    shortcuts: &ShortcutSet,
    claimed: Option<Quality>,
    mode: DilationMode,
) -> Result<QualityReport, VerifyError> {
    if shortcuts.num_parts() != partition.num_parts() {
        return Err(VerifyError::PartCountMismatch {
            shortcuts: shortcuts.num_parts(),
            partition: partition.num_parts(),
        });
    }
    for i in 0..shortcuts.num_parts() {
        for &e in shortcuts.edges(i) {
            if e.index() >= graph.m() {
                return Err(VerifyError::EdgeOutOfRange { part: i, edge: e.0 });
            }
        }
    }
    let report = measure_quality(graph, partition, shortcuts, mode);
    if let Some(claimed) = claimed {
        let measured = report.quality;
        if measured.congestion > claimed.congestion || measured.dilation > claimed.dilation {
            return Err(VerifyError::QualityExceeded { claimed, measured });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::generators::path;
    use lcs_graph::EdgeId;

    #[test]
    fn accepts_valid_and_checks_claims() {
        let g = path(8);
        let p = Partition::new(&g, vec![vec![0, 1, 2, 3]]).unwrap();
        let s = ShortcutSet::empty(1);
        let r = verify(&g, &p, &s, None, DilationMode::Exact).unwrap();
        assert_eq!(r.quality.dilation, 3);
        // Generous claim passes.
        verify(
            &g,
            &p,
            &s,
            Some(Quality {
                congestion: 5,
                dilation: 5,
            }),
            DilationMode::Exact,
        )
        .unwrap();
        // Tight claim fails.
        let err = verify(
            &g,
            &p,
            &s,
            Some(Quality {
                congestion: 1,
                dilation: 2,
            }),
            DilationMode::Exact,
        )
        .unwrap_err();
        assert!(matches!(err, VerifyError::QualityExceeded { .. }));
    }

    #[test]
    fn rejects_mismatched_counts_and_bad_edges() {
        let g = path(8);
        let p = Partition::new(&g, vec![vec![0, 1]]).unwrap();
        let s2 = ShortcutSet::empty(2);
        assert!(matches!(
            verify(&g, &p, &s2, None, DilationMode::Exact),
            Err(VerifyError::PartCountMismatch { .. })
        ));
        let bad = ShortcutSet::from_edge_lists(vec![vec![EdgeId(999)]]);
        assert!(matches!(
            verify(&g, &p, &bad, None, DilationMode::Exact),
            Err(VerifyError::EdgeOutOfRange { .. })
        ));
    }
}
