//! Differential suite for the [`ShortcutBuilder`] trait migration: each
//! migrated baseline backend must produce a **byte-identical**
//! [`ShortcutSet`] — and therefore an identical [`QualityReport`] — to
//! the pre-trait free function it wraps, across seeds and graph
//! families. Any divergence means the adapter changed semantics (extra
//! RNG draws, reordered edges, different defaults).

use lcs_graph::{gnp_connected, grid, hub_and_spoke, Graph, HighwayGraph, HighwayParams};
use lcs_shortcut::{
    global_tree_shortcuts, kitamura_style_shortcuts, measure_quality, trivial_shortcuts,
    DilationMode, GlobalTree, KitamuraSampling, Partition, ShortcutBuilder, ShortcutSet, Trivial,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const SEEDS: [u64; 3] = [1, 2, 3];

/// Four families spanning the shapes the bench exercises: the paper's
/// highway instance, a mesh, a sparse random graph, and a hub topology.
fn families(seed: u64) -> Vec<(&'static str, Graph, Partition)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::new();

    let hw = HighwayGraph::new(HighwayParams {
        num_paths: 3,
        path_len: 16,
        diameter: 4,
    })
    .unwrap();
    let g = hw.graph().clone();
    let p = Partition::new(&g, hw.path_parts()).unwrap();
    out.push(("highway_d4", g, p));

    let g = grid(8, 8);
    let p = Partition::bfs_balls(&g, 6, &mut rng);
    out.push(("grid", g, p));

    let g = gnp_connected(70, 0.06, &mut rng);
    let p = Partition::bfs_balls(&g, 5, &mut rng);
    out.push(("gnp_connected", g, p));

    let g = hub_and_spoke(60, 4, 2, 3, &mut rng);
    let p = Partition::bfs_balls(&g, 5, &mut rng);
    out.push(("hub_and_spoke", g, p));

    out
}

/// Asserts backend output == free-function output, bit for bit, and
/// that the identity extends through quality measurement.
fn assert_equivalent(
    label: &str,
    graph: &Graph,
    partition: &Partition,
    from_backend: ShortcutSet,
    from_free: ShortcutSet,
) {
    assert_eq!(
        from_backend, from_free,
        "{label}: backend diverged from the free function"
    );
    let qa = measure_quality(graph, partition, &from_backend, DilationMode::Exact);
    let qb = measure_quality(graph, partition, &from_free, DilationMode::Exact);
    assert_eq!(qa.quality, qb.quality, "{label}: quality diverged");
    assert_eq!(
        qa.per_part_dilation, qb.per_part_dilation,
        "{label}: per-part dilation diverged"
    );
    assert_eq!(
        qa.per_edge_congestion, qb.per_edge_congestion,
        "{label}: per-edge congestion diverged"
    );
}

#[test]
fn trivial_backend_matches_free_function() {
    for seed in SEEDS {
        for (name, g, p) in families(seed) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let s = Trivial.build(&g, &p, &mut rng);
            assert_equivalent(name, &g, &p, s, trivial_shortcuts(&p));
        }
    }
}

#[test]
fn global_tree_backend_matches_free_function() {
    for seed in SEEDS {
        for (name, g, p) in families(seed) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let b = GlobalTree::default();
            let s = b.build(&g, &p, &mut rng);
            assert_equivalent(name, &g, &p, s, global_tree_shortcuts(&g, &p, 0, None));

            // And with explicit parameters.
            let b = GlobalTree {
                root: 1,
                threshold: Some(4),
            };
            let s = b.build(&g, &p, &mut rng);
            assert_equivalent(name, &g, &p, s, global_tree_shortcuts(&g, &p, 1, Some(4)));
        }
    }
}

#[test]
fn kitamura_backend_matches_free_function() {
    // The sampling baseline consumes the RNG stream, so equivalence
    // requires identically seeded RNGs on both sides — this is exactly
    // the property the `&mut dyn RngCore` pass-through must preserve.
    for seed in SEEDS {
        for (name, g, p) in families(seed) {
            for d in [3u32, 4] {
                let b = KitamuraSampling {
                    d,
                    prob_constant: 1.0,
                };
                let mut r1 = ChaCha8Rng::seed_from_u64(seed);
                let mut r2 = ChaCha8Rng::seed_from_u64(seed);
                let s = b.build(&g, &p, &mut r1);
                let free = kitamura_style_shortcuts(&g, &p, d, 1.0, &mut r2);
                assert_equivalent(&format!("{name}/d={d}"), &g, &p, s, free);
            }
        }
    }
}
