//! Property-based tests of the shortcut framework: quality measurement
//! against brute force, partition invariants, aggregation equivalences.

use lcs_congest::{AggOp, SimConfig};
use lcs_graph::{gnp_connected, k_tree, power_law, random_regular, EdgeId, NodeId};
use lcs_shortcut::{
    global_tree_shortcuts, measure_quality, trivial_shortcuts, verify, AggregationSetup,
    DilationMode, IndexMeta, Partition, ShortcutIndex, ShortcutSet,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn random_setup(seed: u64, n: usize, k: usize) -> (lcs_graph::Graph, Partition) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = gnp_connected(n, 0.1, &mut rng);
    let p = Partition::bfs_balls(&g, k.min(n), &mut rng);
    (g, p)
}

/// Brute-force congestion: for each edge, count parts whose augmented
/// subgraph contains it.
fn brute_congestion(g: &lcs_graph::Graph, p: &Partition, s: &ShortcutSet) -> Vec<u32> {
    let mut per_edge = vec![0u32; g.m()];
    for i in 0..p.num_parts() {
        for e in g.edge_ids() {
            let (u, v) = g.edge_endpoints(e);
            let internal = p.part_of(u) == Some(i as u32) && p.part_of(v) == Some(i as u32);
            let in_h = s.edges(i).contains(&e);
            if internal || in_h {
                per_edge[e.index()] += 1;
            }
        }
    }
    per_edge
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// measure_quality's congestion equals the brute-force count, for
    /// random shortcut sets.
    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn congestion_matches_brute_force(seed in any::<u64>(), n in 6usize..35, k in 2usize..6) {
        let (g, p) = random_setup(seed, n, k);
        // Random shortcut set: each part gets a pseudo-random slice of
        // edges.
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 99);
        let per_part: Vec<Vec<EdgeId>> = (0..p.num_parts())
            .map(|_| {
                g.edge_ids()
                    .filter(|_| rand::Rng::gen_bool(&mut rng, 0.3))
                    .collect()
            })
            .collect();
        let s = ShortcutSet::from_edge_lists(per_part);
        let report = measure_quality(&g, &p, &s, DilationMode::Exact);
        let brute = brute_congestion(&g, &p, &s);
        prop_assert_eq!(report.per_edge_congestion, brute);
    }

    /// Estimate-mode dilation brackets exact-mode dilation per part.
    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn estimate_brackets_exact(seed in any::<u64>(), n in 6usize..30, k in 2usize..5) {
        let (g, p) = random_setup(seed, n, k);
        let s = global_tree_shortcuts(&g, &p, 0, Some(2));
        let exact = measure_quality(&g, &p, &s, DilationMode::Exact);
        let est = measure_quality(&g, &p, &s, DilationMode::Estimate);
        for i in 0..p.num_parts() {
            prop_assert!(est.per_part_dilation[i] >= exact.per_part_dilation[i]);
            prop_assert!(est.per_part_dilation_lower[i] <= exact.per_part_dilation[i]);
        }
    }

    /// BFS-ball partitions always validate and cover the graph; leaders
    /// are part maxima.
    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn bfs_balls_invariants(seed in any::<u64>(), n in 4usize..60, k in 1usize..8) {
        let (g, p) = random_setup(seed, n, k);
        prop_assert_eq!(p.covered(), n);
        for i in 0..p.num_parts() {
            let part = p.part(i);
            prop_assert_eq!(p.leader(i), *part.last().unwrap());
            for &v in part {
                prop_assert_eq!(p.part_of(v), Some(i as u32));
            }
        }
        // Re-validation through the public constructor must succeed.
        let again = Partition::new(&g, p.parts().to_vec()).unwrap();
        prop_assert_eq!(again.num_parts(), p.num_parts());
    }

    /// verify() accepts everything measure_quality produces and rejects
    /// any tighter claim.
    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn verifier_consistency(seed in any::<u64>(), n in 6usize..30, k in 2usize..5) {
        let (g, p) = random_setup(seed, n, k);
        let s = trivial_shortcuts(&p);
        let report = verify(&g, &p, &s, None, DilationMode::Exact).unwrap();
        let q = report.quality;
        // Exact claim passes.
        verify(&g, &p, &s, Some(q), DilationMode::Exact).unwrap();
        // Tighter dilation claim fails when dilation > 0.
        if q.dilation > 0 {
            let mut tight = q;
            tight.dilation -= 1;
            prop_assert!(verify(&g, &p, &s, Some(tight), DilationMode::Exact).is_err());
        }
    }

    /// Simulated partwise aggregation equals the centralized fold for
    /// random partitions and values.
    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn aggregation_simulated_equals_centralized(seed in any::<u64>(), n in 6usize..30, k in 2usize..5) {
        let (g, p) = random_setup(seed, n, k);
        let s = global_tree_shortcuts(&g, &p, 0, Some(1));
        let setup = AggregationSetup::build(&g, &p, &s);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 7);
        let values: Vec<u64> = (0..n).map(|_| rand::Rng::gen_range(&mut rng, 0..500u64)).collect();
        let value = |v: NodeId, part: usize| {
            if p.part_of(v) == Some(part as u32) {
                values[v as usize]
            } else {
                AggOp::Min.identity()
            }
        };
        let central = setup.aggregate_centralized(AggOp::Min, &value);
        let (roots, _) = setup
            .aggregate_simulated(&g, AggOp::Min, &value, false, &SimConfig::default())
            .unwrap();
        for i in 0..p.num_parts() {
            prop_assert_eq!(roots[i], Some(central[i]), "part {}", i);
        }
    }

    /// Frozen indexes built from random zoo graphs survive a
    /// serialization round trip byte-exactly, and truncating the
    /// encoding at any prefix yields a typed error, never a panic.
    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn index_roundtrip_zoo(seed in any::<u64>(), n in 6usize..40, k in 2usize..6, family in 0usize..4) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = match family {
            0 => gnp_connected(n, 0.15, &mut rng),
            1 => k_tree(n, 2, &mut rng),
            // Degree 4 keeps `n * d` even for every n in range.
            2 => random_regular(n, 4, &mut rng),
            _ => power_law(n, 2, &mut rng),
        };
        let p = Partition::bfs_balls(&g, k.min(g.n()), &mut rng);
        let s = global_tree_shortcuts(&g, &p, 0, Some(2));
        let weights: Vec<u64> = (0..g.m() as u64).map(|e| e % 17 + 1).collect();
        let meta = IndexMeta {
            backend: "proptest".to_string(),
            params: vec![("family".to_string(), family.to_string())],
            seed,
            certificate: None,
            diameter: None,
        };
        let idx = ShortcutIndex::freeze(g, weights, p, s, meta);

        let bytes = idx.to_bytes();
        let back = ShortcutIndex::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &idx);
        prop_assert_eq!(back.to_bytes(), bytes.clone());

        // Every truncation point degrades to a typed error.
        let cut = (seed as usize) % bytes.len();
        prop_assert!(ShortcutIndex::from_bytes(&bytes[..cut]).is_err());
    }
}
