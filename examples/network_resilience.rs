// Network resilience audit: how much capacity must fail to disconnect
// a datacenter-style topology? Runs the (1+ε)-approximate min cut
// (Corollary 1.2) and the 2-ECSS backbone design (Corollary 4.3) on a
// two-tier network, checking both against exact references.
//
// Run with: `cargo run --release --example network_resilience`

use lcs_apps::{approximation_ratio, verify_two_ecss};
use lcs_graph::cut_weight;
use low_congestion_shortcuts::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    // Two-tier topology: 8 core routers (clique), 72 racks each
    // dual-homed to cores plus some rack-to-rack links.
    let g = lcs_graph::hub_and_spoke(80, 8, 2, 2, &mut rng);
    let d = exact_diameter(&g).expect("connected");
    let wg = WeightedGraph::with_random_weights(g, 40, &mut rng);
    println!(
        "topology: n={} m={} diameter={}",
        wg.graph().n(),
        wg.graph().m(),
        d
    );

    // --- Minimum cut: the cheapest way to split the network. ---------
    let exact = stoer_wagner(&wg).expect("connected");
    println!("exact min cut (Stoer-Wagner): {}", exact.weight);
    let cfg = MinCutConfig {
        epsilon: 0.2,
        seed: 5,
        mst: MstConfig {
            diameter: Some(d.max(3)),
            ..MstConfig::default()
        },
        ..MinCutConfig::default()
    };
    let approx = approximate_min_cut(&wg, &cfg).expect("cuttable");
    println!(
        "approx min cut: {} ({} trees packed, {} accounted rounds, ratio {:.3})",
        approx.weight,
        approx.trees_packed,
        approx.total_rounds,
        approximation_ratio(&wg, &approx)
    );
    assert_eq!(cut_weight(&wg, &approx.side), approx.weight);
    assert!(approx.weight as f64 <= 1.2 * exact.weight as f64 + 1e-9);

    // --- 2-ECSS: a cheap backbone that survives any single link cut. -
    match two_ecss(&wg, &cfg.mst) {
        Ok(backbone) => {
            assert!(verify_two_ecss(wg.graph(), &backbone.edges));
            println!(
                "2-ECSS backbone: {} edges, weight {} (MST part {}, augmentation {})",
                backbone.edges.len(),
                backbone.weight,
                backbone.mst_weight,
                backbone.augmentation_weight
            );
        }
        Err(e) => println!("2-ECSS unavailable: {e}"),
    }
}
