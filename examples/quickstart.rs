// Quickstart: build a constant-diameter hard instance, compute the
// Kogan–Parter shortcuts three ways (centralized raw, pruned trees,
// fully distributed), and compare their quality against the baselines.
//
// Run with: `cargo run --release --example quickstart`

use low_congestion_shortcuts::prelude::*;

fn main() {
    // 1. Workload: 6 disjoint paths of 40 columns behind a diameter-4
    //    highway — the structure that makes shortcuts hard (Elkin's
    //    lower bound family).
    let hw = HighwayGraph::new(HighwayParams {
        num_paths: 6,
        path_len: 40,
        diameter: 4,
    })
    .expect("valid family parameters");
    let g = hw.graph();
    println!(
        "graph: n={} m={} diameter={:?}",
        g.n(),
        g.m(),
        exact_diameter(g)
    );

    // 2. Parts: one per path (vertex-disjoint, connected).
    let parts = Partition::new(g, hw.path_parts()).expect("valid parts");
    println!(
        "parts: {} paths of {} nodes",
        parts.num_parts(),
        parts.part(0).len()
    );

    // 3. Paper parameters: k_D = n^((D-2)/(2D-2)), N = n/k_D,
    //    p = k_D log n / N.
    let params = KpParams::new(g.n(), 4, 1.0).expect("D >= 3");
    println!(
        "params: k_D={:.2} N={} p={:.3} reps={}",
        params.k, params.big_n, params.p, params.reps
    );

    // 4. Centralized construction + pruning to the BFS-tree form.
    let raw = centralized_shortcuts(
        g,
        &parts,
        params,
        42,
        LargenessRule::Radius,
        OracleMode::PerPart,
    );
    let pruned = prune_to_trees(g, &parts, &raw.shortcuts, params.depth_limit());

    // 5. Full CONGEST execution (diameter guessing included). The whole
    //    multi-phase pipeline runs through ONE engine session — a
    //    single worker-pool spawn, one cumulative budget, per-phase
    //    statistics.
    let dist = distributed_shortcuts(
        g,
        &parts,
        &DistributedConfig {
            seed: 42,
            ..DistributedConfig::default()
        },
    )
    .expect("construction verifies");
    println!(
        "distributed: accepted D''={} in {} rounds, {} messages, {} engine phases",
        dist.accepted_guess,
        dist.total_rounds,
        dist.total_messages,
        dist.phase_stats.len()
    );
    for phase in &dist.phase_stats {
        println!(
            "    phase {:>22}: {:>5} rounds {:>7} messages",
            phase.label, phase.rounds, phase.messages
        );
    }

    // 5b. The same composability is available directly: protocols are
    //     first-class values run through a `Session`, sequentially or
    //     concurrently (`join` = shared rounds, the paper's concurrent
    //     part-wise aggregation).
    let mut session = Session::new(g, SimConfig::default());
    let bfs = session.run(Bfs::new(0)).expect("bfs");
    let pos = positions_from_tree(0, &bfs.parent, &bfs.children);
    let ones = vec![1u64; g.n()];
    let depths: Vec<u64> = bfs.dist.iter().map(|d| u64::from(d.unwrap_or(0))).collect();
    let ((n_res, _), (ecc_res, _)) = session
        .join(
            TreeAggregate::new(pos.clone(), &ones, AggOp::Sum, true),
            TreeAggregate::new(pos, &depths, AggOp::Max, true),
        )
        .expect("joined aggregations");
    println!(
        "session: n={} ecc={} learned in {} shared rounds ({} phases, {} total rounds)",
        n_res[0].unwrap(),
        ecc_res[0].unwrap(),
        session.phases()[1].rounds,
        session.phases().len(),
        session.stats().rounds,
    );

    // 6. Quality comparison.
    for (name, shortcuts) in [
        ("trivial (H=∅)", trivial_shortcuts(&parts)),
        ("global tree", global_tree_shortcuts(g, &parts, 0, Some(1))),
        ("KP raw", raw.shortcuts.clone()),
        ("KP pruned", pruned.shortcuts.clone()),
        ("KP distributed", dist.shortcuts.clone()),
    ] {
        let report =
            verify(g, &parts, &shortcuts, None, DilationMode::Exact).expect("valid shortcut set");
        println!("{name:>16}: {}", report.quality);
    }
    println!(
        "bounds: congestion <= {} dilation <= {}",
        params.congestion_bound(),
        params.dilation_bound()
    );
}
