// Quickstart for the service layer: build a ShortcutIndex once with
// the fully distributed pipeline, persist it to disk, load it back,
// and answer a mixed query batch through a concurrent pool — then
// re-weight the edges via customization without rebuilding anything.
//
// Run with: `cargo run --release --example quickstart_serve`

use low_congestion_shortcuts::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. Workload: the constant-diameter hard instance, one part per
    //    path.
    let hw = HighwayGraph::new(HighwayParams {
        num_paths: 4,
        path_len: 16,
        diameter: 4,
    })
    .expect("valid family parameters");
    let g = hw.graph().clone();
    let parts = Partition::new(&g, hw.path_parts()).expect("valid parts");
    let weights: Vec<u64> = (0..g.m() as u64).map(|e| e * 5 % 19 + 1).collect();

    // 2. Build (preprocess-once): the full CONGEST pipeline, frozen
    //    into an index. Everything construction produced — CSR graph,
    //    weights, partition, shortcut edge sets, aggregation trees,
    //    quality certificate — is in this one artifact.
    let cfg = DistributedConfig {
        seed: 42,
        ..DistributedConfig::default()
    };
    let (index, outcome) =
        build_index_distributed(&g, &weights, &parts, &cfg).expect("construction verifies");
    println!(
        "built: backend={} accepted D''={} certificate={:?}",
        index.meta().backend,
        outcome.accepted_guess,
        index.meta().certificate,
    );

    // 3. Persist → reload: the flat little-endian format round-trips
    //    byte-exactly (truncation / corruption come back as typed
    //    errors, never panics).
    let path = std::env::temp_dir().join(format!("quickstart_{}.lcsidx", std::process::id()));
    index.save(&path).expect("save index");
    let loaded = ShortcutIndex::load(&path).expect("load index");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, index, "save/load is lossless");
    println!("persisted: {} bytes round-tripped", loaded.to_bytes().len());

    // 4. Query-many: a pool of sessions shares the index read-only.
    //    Results are deterministic in (index, queries, batch seed) —
    //    the pool size only changes wall-clock, never answers.
    let index = Arc::new(loaded);
    let queries = [
        Query::sssp(0),
        Query::Mst,
        Query::Aggregate { op: AggOp::Sum },
        Query::sssp(17),
    ];
    let solo = ServePool::new(Arc::clone(&index), 1).serve(&queries, 7);
    let pooled = ServePool::new(Arc::clone(&index), 2).serve(&queries, 7);
    assert_eq!(solo.results, pooled.results);
    assert_eq!(solo.fingerprint, pooled.fingerprint);
    for (q, r) in queries.iter().zip(&pooled.results) {
        match r {
            QueryResult::Sssp { dist, .. } => {
                let reached = dist.iter().filter(|&&d| d != W_UNREACHABLE).count();
                println!("{q:?}: {reached}/{} nodes reached", dist.len());
            }
            QueryResult::Mst { weight, phases, .. } => {
                println!("{q:?}: weight={weight} in {phases} Boruvka phases");
            }
            QueryResult::Aggregate { per_part } => {
                println!("{q:?}: {} per-part sums", per_part.len());
            }
            other => println!("{q:?}: {other:?}"),
        }
    }
    println!(
        "batch fingerprint: {:#018x} (pool-size invariant)",
        pooled.fingerprint
    );

    // 5. Customize (re-weight without re-partitioning): only the
    //    weight-dependent tables are recomputed; partition, shortcut
    //    sets, and trees are reused frozen.
    let rush_hour: Vec<u64> = (0..g.m() as u64).map(|e| e * 11 % 37 + 1).collect();
    let cx = Arc::new(
        CustomizedIndex::with_weights(Arc::clone(&index), rush_hour).expect("same edge count"),
    );
    let rebatch = ServePool::with_customization(cx, 2).serve(&[Query::sssp(0)], 7);
    println!(
        "customized: rush-hour fingerprint {:#018x} (index untouched)",
        rebatch.fingerprint
    );
}
