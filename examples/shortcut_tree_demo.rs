// Figure 1 & 2, executable: builds the auxiliary layered graph
// `G_{P,Q,ℓ}`, its BFS tree, the sampled forest `T*`, and walks the
// (i,k)-walk machinery of §3.1, printing each measured walk.
//
// Run with: `cargo run --release --example shortcut_tree_demo`

use lcs_core::WalkEnd;
use low_congestion_shortcuts::prelude::*;

fn main() {
    // Small instance so the printout stays readable: 2 paths of 14
    // columns, diameter 4 (one leaf level + root).
    let hw = HighwayGraph::new(HighwayParams {
        num_paths: 2,
        path_len: 14,
        diameter: 4,
    })
    .expect("valid parameters");
    let g = hw.graph();
    let params = KpParams::new(g.n(), 4, 1.0).expect("params");
    println!(
        "instance: n={} m={} | k_D={:.2} p={:.3} reps={}",
        g.n(),
        g.m(),
        params.k,
        params.p,
        params.reps
    );

    // P = path 0; Q = the column leaves (distance 1 from every path
    // node); ell = 2 leaves room for one full copy layer.
    let path: Vec<NodeId> = (0..14).map(|c| hw.path_node(0, c)).collect();
    let q: Vec<NodeId> = (0..14).map(|c| hw.column_leaf(c)).collect();
    let ell = 2usize;

    for (label, p_sample) in [
        ("p = 0 (no sampling)", 0.0),
        ("p = paper", params.p),
        ("p = 1", 1.0),
    ] {
        let oracle = SampleOracle::new(7, p_sample, params.reps);
        let tree = ShortcutTree::new(g, &path, &q, ell, &oracle, path[13], 0)
            .expect("P within distance ell of Q");
        println!("\n--- {label} ---");
        println!(
            "auxiliary graph: {} nodes in {} layers (|P|={} leaves)",
            tree.aux_size(),
            ell + 2,
            tree.path_len()
        );
        for target in 2..=ell + 1 {
            let m = tree.walk_to_level(0, target).expect("valid target");
            let end = match m.end {
                WalkEnd::ReachedT => "reached t (walked the whole path)".to_string(),
                WalkEnd::ReachedLevel { vertex } => {
                    format!("reached level {target} at copy of node {vertex}")
                }
            };
            println!(
                "  (1,{}) walk: length {:>3}, {:>2} units, Obs 3.1 distinct: {} — {}",
                target, m.length, m.units, m.level_nodes_distinct, end
            );
        }
        if let Some(d) = tree.tstar_dist_to_layer(0, ell + 2) {
            println!("  dist_T*(s, root) = {d}");
        } else {
            println!("  root unreachable in T* (sampling too sparse)");
        }
    }
    println!(
        "\nreading: with p=0 every unit bounces on layer 2 and the walk crawls\n\
         along the path; at the paper's p the walk hops to the target level\n\
         within the Lemma 3.3 budget; with p=1 a single unit suffices."
    );
}
