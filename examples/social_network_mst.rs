// MST on a constant-diameter "social network": the paper's motivating
// scenario (§1: real-world networks have tiny diameter independent of
// size). Builds a hub-and-spoke graph with measured diameter ≤ 4,
// computes the MST through the shortcut framework with full round
// accounting, and verifies it against Kruskal.
//
// Run with: `cargo run --release --example social_network_mst`

use low_congestion_shortcuts::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2026);
    // 2000 members, 12 highly-connected hubs, everyone follows 2 hubs
    // and one random peer; link weights = interaction costs.
    let g = lcs_graph::hub_and_spoke(2000, 12, 2, 1, &mut rng);
    let d = exact_diameter(&g).expect("connected");
    println!(
        "social network: n={} m={} measured diameter={}",
        g.n(),
        g.m(),
        d
    );
    let wg = WeightedGraph::with_random_weights(g, 10_000, &mut rng);

    let reference = kruskal(&wg);
    println!("reference MST weight (Kruskal): {}", reference.weight);

    for strategy in [
        ShortcutStrategy::KoganParter,
        ShortcutStrategy::GlobalTree,
        ShortcutStrategy::Trivial,
    ] {
        let cfg = MstConfig {
            strategy,
            diameter: Some(d.max(3)),
            seed: 7,
            ..MstConfig::default()
        };
        let out = mst_via_shortcuts(&wg, &cfg).expect("mst computes");
        assert_eq!(
            out.weight, reference.weight,
            "strategy {strategy} wrong tree"
        );
        assert_eq!(out.edges, reference.edges, "strategy {strategy} wrong tree");
        println!(
            "{strategy:>14}: {} phases, {} accounted rounds (construction+aggregation)",
            out.phases, out.total_rounds
        );
    }
    println!("all strategies produced the exact MST — they differ only in rounds.");
}
