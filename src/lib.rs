//! # low-congestion-shortcuts
//!
//! A full reproduction of **Kogan & Parter, “Low-Congestion Shortcuts in
//! Constant Diameter Graphs” (PODC 2021)** as a Rust workspace:
//!
//! * [`graph`] (re-export of `lcs-graph`) — graph substrate, generators
//!   (including the Elkin / Das-Sarma-style lower-bound family), and
//!   centralized reference algorithms;
//! * [`congest`] (`lcs-congest`) — a synchronous CONGEST-model simulator
//!   with bandwidth enforcement and the distributed primitives
//!   (BFS, tree aggregation, random-delay multi-BFS), all expressed as
//!   composable [`Protocol`](congest::Protocol)s run through a
//!   [`Session`](congest::Session);
//! * [`shortcut`] (`lcs-shortcut`) — the shortcut framework: partitions,
//!   quality measurement, verification, baselines, partwise aggregation;
//! * [`core`] (`lcs-core`) — the paper's construction: centralized,
//!   fully distributed (diameter guessing included), odd-diameter
//!   reduction, shortcut trees, and dilation certification;
//! * [`apps`] (`lcs-apps`) — MST, (1+ε) min cut, SSSP, 2-ECSS;
//! * [`serve`] (`lcs-serve`) — the preprocess-once, query-many service
//!   layer: a frozen, serializable
//!   [`ShortcutIndex`](shortcut::ShortcutIndex), cheap re-weighting
//!   customization, and a concurrent deterministic query pool.
//!
//! ## Quickstart
//!
//! ```
//! use low_congestion_shortcuts::prelude::*;
//!
//! // A hard instance: disjoint paths joined by a shallow highway.
//! let hw = HighwayGraph::new(HighwayParams {
//!     num_paths: 4, path_len: 30, diameter: 4,
//! }).unwrap();
//! let g = hw.graph();
//! let parts = Partition::new(g, hw.path_parts()).unwrap();
//!
//! // Build the paper's shortcuts and check their quality.
//! let params = KpParams::new(g.n(), 4, 1.0).unwrap();
//! let built = centralized_shortcuts(
//!     g, &parts, params, 7, LargenessRule::Radius, OracleMode::PerPart);
//! let q = measure_quality(g, &parts, &built.shortcuts, DilationMode::Exact).quality;
//! assert!((q.dilation as u64) <= params.dilation_bound());
//! assert!((q.congestion as u64) <= params.congestion_bound());
//! ```
//!
//! ## Running CONGEST protocols: `Session` + `Protocol`
//!
//! Every distributed primitive is a first-class
//! [`Protocol`](congest::Protocol) value. A [`Session`](congest::Session)
//! owns one engine instance — graph tables, the persistent worker pool,
//! cumulative statistics — and composes protocols **sequentially**
//! (phases share the engine and one round budget, with a per-phase
//! stats breakdown) or **concurrently** (`join` multiplexes two
//! protocols into the *same* rounds, the way the paper runs many
//! part-wise aggregations at once):
//!
//! ```
//! use low_congestion_shortcuts::prelude::*;
//!
//! let g = lcs_graph::generators::grid(4, 4);
//! let mut session = Session::new(&g, SimConfig::default());
//!
//! // Phase 1: a BFS tree from node 0.
//! let bfs = session.run(Bfs::new(0)).unwrap();
//! let pos = positions_from_tree(0, &bfs.parent, &bfs.children);
//!
//! // Phases 2 ∥ 3: two aggregations over that tree in SHARED rounds.
//! let ones = vec![1u64; g.n()];
//! let ids: Vec<u64> = (0..g.n() as u64).collect();
//! let ((count, _), (max, _)) = session
//!     .join(
//!         TreeAggregate::new(pos.clone(), &ones, AggOp::Sum, true),
//!         TreeAggregate::new(pos, &ids, AggOp::Max, true),
//!     )
//!     .unwrap();
//! assert_eq!(count[0], Some(16));
//! assert_eq!(max[0], Some(15));
//!
//! // One engine, two phases, cumulative + per-phase accounting.
//! assert_eq!(session.phases().len(), 2);
//! assert_eq!(
//!     session.stats().rounds,
//!     session.phases().iter().map(|p| p.rounds).sum::<u64>(),
//! );
//! ```

pub use lcs_apps as apps;
pub use lcs_congest as congest;
pub use lcs_core as core;
pub use lcs_graph as graph;
pub use lcs_serve as serve;
pub use lcs_shortcut as shortcut;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use lcs_apps::{
        approximate_min_cut, mst_via_shortcuts, shortcut_sssp, two_ecss, MinCutConfig, MstConfig,
        ShortcutStrategy,
    };
    pub use lcs_congest::{
        positions_from_tree, AggOp, Bfs, ExecutionMode, Join, MultiAggregate, MultiBfs,
        PrefixNumber, Protocol, Session, SimConfig, TreeAggregate, Wake,
    };
    pub use lcs_core::{
        build_index, build_index_distributed, centralized_shortcuts, distributed_shortcuts, k_d,
        prune_to_trees, DistributedConfig, IndexBuildConfig, KpParams, LargenessRule, OracleMode,
        SampleOracle, ShortcutTree,
    };
    pub use lcs_graph::{
        exact_diameter, kruskal, stoer_wagner, Graph, GraphBuilder, HighwayGraph, HighwayParams,
        NodeId, WeightedGraph, W_UNREACHABLE,
    };
    pub use lcs_serve::{CustomizedIndex, IndexedSession, Query, QueryResult, ServePool};
    pub use lcs_shortcut::{
        global_tree_shortcuts, measure_quality, trivial_shortcuts, verify, DilationMode, Partition,
        Quality, ShortcutIndex, ShortcutSet,
    };
}
