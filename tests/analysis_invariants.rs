//! Property-based integration tests of the paper's analysis invariants:
//! Observation 3.1 (distinct level-k nodes), Observation 3.2 (walks map
//! to H-paths), shortcut validity under random partitions, and the
//! congestion/dilation bounds across random seeds.

use lcs_core::{ShortcutTree, WalkEnd};
use low_congestion_shortcuts::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn highway_fixture(seedish: u8) -> (HighwayGraph, Partition) {
    let paths = 2 + (seedish % 3) as usize;
    let len = 16 + (seedish % 5) as usize * 4;
    let hw = HighwayGraph::new(HighwayParams {
        num_paths: paths,
        path_len: len,
        diameter: 4,
    })
    .unwrap();
    let p = Partition::new(hw.graph(), hw.path_parts()).unwrap();
    (hw, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Observation 3.1 + Lemma 3.3 structure: walks never repeat a
    /// level-k node and never move left.
    #[test]
    fn walks_satisfy_observation_3_1(seed in any::<u64>(), fix in 0u8..15, p in 0.05f64..0.95) {
        let (hw, parts) = highway_fixture(fix);
        let g = hw.graph();
        let path: Vec<NodeId> = parts.part(0).to_vec();
        let q: Vec<NodeId> = (0..hw.params().path_len).map(|c| hw.column_leaf(c)).collect();
        let oracle = SampleOracle::new(seed, p, 6);
        let tree = ShortcutTree::new(g, &path, &q, 2, &oracle, parts.leader(0), 0).unwrap();
        for i in (0..path.len()).step_by(3) {
            for target in 2..=3usize {
                let m = tree.walk_to_level(i, target).unwrap();
                prop_assert!(m.level_nodes_distinct, "i={i} target={target}");
                prop_assert!(m.length >= 1);
            }
        }
    }

    /// Observation 3.2: a measured (i,k) walk of length L implies an
    /// H-path of length ≤ L between p_i and the reached G-vertex.
    #[test]
    fn walks_map_to_h_paths(seed in any::<u64>(), p in 0.1f64..0.9) {
        let (hw, parts) = highway_fixture(4);
        let g = hw.graph();
        let path: Vec<NodeId> = parts.part(0).to_vec();
        let q: Vec<NodeId> = (0..hw.params().path_len).map(|c| hw.column_leaf(c)).collect();
        let reps = 6u32;
        let oracle = SampleOracle::new(seed, p, reps);
        let tree = ShortcutTree::new(g, &path, &q, 2, &oracle, parts.leader(0), 0).unwrap();
        // Materialize H_0 with the same coins: step 1 + either-direction
        // sampling (a superset of the directed coins the tree uses).
        let mut params = KpParams::new(g.n(), 4, 1.0).unwrap();
        params.p = p;
        params = params.with_reps(reps);
        let built = centralized_shortcuts(
            g, &parts, params, seed, LargenessRule::Radius, OracleMode::PerPart);
        let sub = built.shortcuts.augmented_subgraph(g, &parts, 0);
        for i in (0..path.len()).step_by(4) {
            let m = tree.walk_to_level(i, 3).unwrap();
            if let WalkEnd::ReachedLevel { vertex } = m.end {
                if let Some(d) = sub.distance(path[i], vertex) {
                    prop_assert!(
                        (d as usize) <= m.length,
                        "walk length {} but H-distance {d}",
                        m.length
                    );
                }
            }
        }
    }

    /// Bound compliance over random seeds (the w.h.p. statement of
    /// Theorem 1.1 at fixed n).
    #[test]
    fn bounds_hold_over_seeds(seed in any::<u64>()) {
        let (hw, parts) = highway_fixture(7);
        let g = hw.graph();
        let params = KpParams::new(g.n(), 4, 1.0).unwrap();
        let out = centralized_shortcuts(
            g, &parts, params, seed, LargenessRule::Radius, OracleMode::PerPart);
        let q = measure_quality(g, &parts, &out.shortcuts, DilationMode::Exact).quality;
        prop_assert!((q.congestion as u64) <= params.congestion_bound());
        prop_assert!((q.dilation as u64) <= params.dilation_bound());
    }

    /// Shortcut validity for arbitrary BFS-ball partitions of random
    /// connected graphs.
    #[test]
    fn random_partitions_yield_valid_shortcuts(seed in any::<u64>(), k in 2usize..12) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = lcs_graph::gnp_connected(80, 0.08, &mut rng);
        let parts = Partition::bfs_balls(&g, k, &mut rng);
        let d = exact_diameter(&g).unwrap().max(3);
        let params = KpParams::new(g.n(), d, 1.0).unwrap();
        let out = centralized_shortcuts(
            &g, &parts, params, seed, LargenessRule::Radius, OracleMode::PerPart);
        // verify() recomputes everything and errors on any structural
        // violation.
        let report = verify(&g, &parts, &out.shortcuts, None, DilationMode::Exact).unwrap();
        prop_assert!((report.quality.congestion as u64) <= params.congestion_bound());
    }

    /// The two oracle enumeration modes agree in distribution: per-edge
    /// inclusion frequency across seeds is comparable.
    #[test]
    fn oracle_modes_distributionally_close(seed in 0u64..1000) {
        let (hw, parts) = highway_fixture(2);
        let g = hw.graph();
        let params = KpParams::new(g.n(), 4, 1.0).unwrap();
        let a = centralized_shortcuts(
            g, &parts, params, seed, LargenessRule::Radius, OracleMode::PerPart);
        let b = centralized_shortcuts(
            g, &parts, params, seed, LargenessRule::Radius, OracleMode::PerArc);
        let (ta, tb) = (a.shortcuts.total_edges() as f64, b.shortcuts.total_edges() as f64);
        prop_assert!(ta > 0.0 && tb > 0.0);
        prop_assert!(ta / tb < 3.0 && tb / ta < 3.0, "{ta} vs {tb}");
    }
}
