//! End-to-end application tests: MST (simulated on the CONGEST engine),
//! min cut, SSSP, and 2-ECSS, all against exact references.

use lcs_apps::{approximation_ratio, bellman_ford_rounds, verify_two_ecss};
use low_congestion_shortcuts::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn simulated_mst_on_engine_matches_kruskal_across_strategies() {
    let hw = HighwayGraph::new(HighwayParams {
        num_paths: 3,
        path_len: 18,
        diameter: 4,
    })
    .unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let wg = WeightedGraph::with_random_weights(hw.graph().clone(), 10_000, &mut rng);
    let reference = kruskal(&wg);
    for strategy in [
        ShortcutStrategy::KoganParter,
        ShortcutStrategy::GlobalTree,
        ShortcutStrategy::Trivial,
    ] {
        let out = mst_via_shortcuts(
            &wg,
            &MstConfig {
                strategy,
                execution: ExecutionMode::Simulated,
                diameter: Some(4),
                ..MstConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.edges, reference.edges, "{strategy}");
        assert!(out.messages > 0, "{strategy} must exchange real messages");
    }
}

#[test]
fn mst_over_many_seeds_and_families() {
    for seed in 0..5u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = lcs_graph::hub_and_spoke(150, 6, 2, 1, &mut rng);
        let d = exact_diameter(&g).unwrap().max(3);
        let wg = WeightedGraph::with_random_weights(g, 1000, &mut rng);
        let out = mst_via_shortcuts(
            &wg,
            &MstConfig {
                seed,
                diameter: Some(d),
                ..MstConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.weight, kruskal(&wg).weight, "seed {seed}");
    }
}

#[test]
fn min_cut_within_epsilon_on_structured_and_random_graphs() {
    for seed in 0..4u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed + 100);
        let g = lcs_graph::gnp_connected(50, 0.12, &mut rng);
        let wg = WeightedGraph::with_random_weights(g, 25, &mut rng);
        let out = approximate_min_cut(
            &wg,
            &MinCutConfig {
                epsilon: 0.25,
                seed,
                ..MinCutConfig::default()
            },
        )
        .unwrap();
        let ratio = approximation_ratio(&wg, &out);
        assert!(ratio <= 1.25 + 1e-9, "seed {seed} ratio {ratio}");
        assert!(ratio >= 1.0 - 1e-9, "seed {seed} beat the exact cut?!");
    }
}

#[test]
fn sssp_accelerates_long_chains_with_sound_bounds() {
    let hw = HighwayGraph::new(HighwayParams {
        num_paths: 3,
        path_len: 50,
        diameter: 4,
    })
    .unwrap();
    let g = hw.graph().clone();
    let weights: Vec<u64> = g
        .edge_ids()
        .map(|e| {
            let (u, v) = g.edge_endpoints(e);
            if u < hw.highway_first() && v < hw.highway_first() {
                1
            } else {
                200
            }
        })
        .collect();
    let wg = WeightedGraph::new(g.clone(), weights).unwrap();
    let parts = Partition::new(&g, hw.path_parts()).unwrap();
    let params = KpParams::new(g.n(), 4, 1.0).unwrap();
    let raw = centralized_shortcuts(
        &g,
        &parts,
        params,
        4,
        LargenessRule::Radius,
        OracleMode::PerPart,
    );
    let pruned = prune_to_trees(&g, &parts, &raw.shortcuts, params.depth_limit());
    let accel = shortcut_sssp(&wg, &parts, &pruned.shortcuts, 0, 512);
    let (_, bf_rounds) = bellman_ford_rounds(&wg, 0);
    assert!((accel.iterations as u64) < bf_rounds);
    let exact = lcs_graph::dijkstra(&wg, 0);
    for (v, &exact_d) in exact.iter().enumerate().take(g.n()) {
        assert!(accel.dist[v] >= exact_d, "node {v} below true distance");
    }
}

#[test]
fn two_ecss_produces_valid_backbone() {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let g = lcs_graph::hub_and_spoke(60, 6, 2, 2, &mut rng);
    if !lcs_graph::is_two_edge_connected(&g) {
        return; // family occasionally leaves a bridge; nothing to test
    }
    let wg = WeightedGraph::with_random_weights(g, 50, &mut rng);
    let out = two_ecss(
        &wg,
        &MstConfig {
            diameter: Some(4),
            ..MstConfig::default()
        },
    )
    .unwrap();
    assert!(verify_two_ecss(wg.graph(), &out.edges));
    assert!(out.weight >= kruskal(&wg).weight);
}
