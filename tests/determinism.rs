//! Reproducibility: every randomized pipeline is a pure function of its
//! seed.

use low_congestion_shortcuts::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn whole_pipeline_is_seed_deterministic() {
    let build = || {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 3,
            path_len: 20,
            diameter: 4,
        })
        .unwrap();
        let g = hw.graph().clone();
        let parts = Partition::new(&g, hw.path_parts()).unwrap();
        let dist = distributed_shortcuts(
            &g,
            &parts,
            &DistributedConfig {
                seed: 123,
                known_diameter: Some(4),
                ..DistributedConfig::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let wg = WeightedGraph::with_random_weights(g.clone(), 100, &mut rng);
        let mst = mst_via_shortcuts(
            &wg,
            &MstConfig {
                seed: 5,
                diameter: Some(4),
                ..MstConfig::default()
            },
        )
        .unwrap();
        let cut = approximate_min_cut(
            &wg,
            &MinCutConfig {
                seed: 5,
                mst: MstConfig {
                    diameter: Some(4),
                    ..MstConfig::default()
                },
                ..MinCutConfig::default()
            },
        )
        .unwrap();
        (
            dist.shortcuts,
            dist.total_rounds,
            dist.total_messages,
            mst.edges,
            mst.total_rounds,
            cut.weight,
            cut.trees_packed,
        )
    };
    let a = build();
    let b = build();
    assert_eq!(a, b, "same seeds must reproduce every output exactly");
}

#[test]
fn different_seeds_change_the_coins_not_the_guarantees() {
    let hw = HighwayGraph::new(HighwayParams {
        num_paths: 3,
        path_len: 24,
        diameter: 4,
    })
    .unwrap();
    let g = hw.graph();
    let parts = Partition::new(g, hw.path_parts()).unwrap();
    // A small constant keeps p well below 1 at this size, so the coins
    // actually vary (at p = 1 every seed samples everything).
    let params = KpParams::new(g.n(), 4, 0.2).unwrap();
    let mut qualities = Vec::new();
    for seed in 0..6u64 {
        let out = centralized_shortcuts(
            g,
            &parts,
            params,
            seed,
            LargenessRule::Radius,
            OracleMode::PerPart,
        );
        let q = measure_quality(g, &parts, &out.shortcuts, DilationMode::Exact).quality;
        assert!(
            (q.congestion as u64) <= params.congestion_bound(),
            "seed {seed}"
        );
        assert!(
            (q.dilation as u64) <= params.dilation_bound(),
            "seed {seed}"
        );
        qualities.push(out.shortcuts.total_edges());
    }
    // The coins genuinely vary.
    qualities.dedup();
    assert!(
        qualities.len() > 1,
        "seeds should produce different samples"
    );
}
