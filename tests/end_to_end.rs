//! End-to-end integration: the full distributed pipeline against the
//! centralized construction and the paper's bounds, across diameters
//! and graph families.

use low_congestion_shortcuts::prelude::*;

fn highway(d: u32, paths: usize, len: usize) -> (Graph, Partition) {
    let hw = HighwayGraph::new(HighwayParams {
        num_paths: paths,
        path_len: len,
        diameter: d,
    })
    .unwrap();
    let g = hw.graph().clone();
    let p = Partition::new(&g, hw.path_parts()).unwrap();
    (g, p)
}

#[test]
fn distributed_meets_bounds_across_diameters() {
    for d in [3u32, 4, 5, 6] {
        let (g, parts) = highway(d, 3, (d as usize + 2).max(20));
        let out = distributed_shortcuts(
            &g,
            &parts,
            &DistributedConfig {
                known_diameter: Some(d),
                seed: d as u64,
                ..DistributedConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("D={d}: {e}"));
        let report = verify(&g, &parts, &out.shortcuts, None, DilationMode::Exact).unwrap();
        assert!(
            (report.quality.congestion as u64) <= out.params.congestion_bound(),
            "D={d} congestion {} vs bound {}",
            report.quality.congestion,
            out.params.congestion_bound()
        );
        assert!(
            (report.quality.dilation as u64) <= 2 * out.params.depth_limit() as u64,
            "D={d} dilation {}",
            report.quality.dilation
        );
        assert!(
            out.total_rounds <= 4 * out.params.round_budget(),
            "D={d} rounds {} vs budget {}",
            out.total_rounds,
            out.params.round_budget()
        );
    }
}

#[test]
fn unknown_diameter_ladder_terminates_with_valid_shortcuts() {
    let (g, parts) = highway(5, 3, 24);
    let out = distributed_shortcuts(&g, &parts, &DistributedConfig::default()).unwrap();
    assert!(out.guesses.last().unwrap().accepted);
    verify(&g, &parts, &out.shortcuts, None, DilationMode::Exact).unwrap();
}

#[test]
fn centralized_and_distributed_agree_on_largeness_and_scale() {
    let (g, parts) = highway(4, 4, 28);
    let seed = 77;
    let dist = distributed_shortcuts(
        &g,
        &parts,
        &DistributedConfig {
            known_diameter: Some(4),
            seed,
            ..DistributedConfig::default()
        },
    )
    .unwrap();
    let central = centralized_shortcuts(
        &g,
        &parts,
        dist.params,
        seed,
        LargenessRule::Radius,
        OracleMode::PerPart,
    );
    assert_eq!(dist.is_large, central.is_large);
    // Distributed trees are subsets of the (direction-restricted)
    // centralized raw shortcut edges + part-incident edges.
    for i in 0..parts.num_parts() {
        let raw: std::collections::HashSet<_> = central.shortcuts.edges(i).iter().collect();
        for e in dist.shortcuts.edges(i) {
            let (u, v) = g.edge_endpoints(*e);
            let step1 = parts.part_of(u) == Some(i as u32) || parts.part_of(v) == Some(i as u32);
            assert!(
                step1 || raw.contains(e),
                "part {i}: distributed tree edge {e:?} missing from centralized H_i"
            );
        }
    }
}

#[test]
fn shortcuts_on_random_small_diameter_graphs() {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    let g = lcs_graph::gnp_connected(300, 0.05, &mut rng);
    let d = exact_diameter(&g).unwrap().max(3);
    let parts = Partition::bfs_balls(&g, 12, &mut rng);
    let params = KpParams::new(g.n(), d, 1.0).unwrap();
    let out = centralized_shortcuts(
        &g,
        &parts,
        params,
        3,
        LargenessRule::Radius,
        OracleMode::PerPart,
    );
    let report = verify(&g, &parts, &out.shortcuts, None, DilationMode::Exact).unwrap();
    assert!((report.quality.congestion as u64) <= params.congestion_bound());
    assert!((report.quality.dilation as u64) <= params.dilation_bound());
}

#[test]
fn odd_diameter_subdivision_end_to_end() {
    let (g, parts) = highway(5, 4, 30);
    let params = KpParams::new(g.n(), 5, 1.0).unwrap();
    let out = lcs_core::odd_shortcuts_subdivision(&g, &parts, params, 11, LargenessRule::Radius);
    let report = verify(&g, &parts, &out.shortcuts, None, DilationMode::Exact).unwrap();
    assert!((report.quality.dilation as u64) <= params.dilation_bound());
    assert!((report.quality.congestion as u64) <= params.congestion_bound());
}

#[test]
fn quality_beats_trivial_baseline_on_hard_family() {
    // The headline separation at D=3: KP quality below the sqrt(n)-ish
    // baselines. (At n=1600 the margin is seed-dependent; by n=3600 the
    // k_3 = n^(1/4) vs sqrt(n) gap is structural.)
    let hw = HighwayGraph::balanced(3600, 3).unwrap();
    let g = hw.graph().clone();
    let parts = Partition::new(&g, hw.path_parts()).unwrap();
    let params = KpParams::new(g.n(), 3, 1.0).unwrap();
    let kp = centralized_shortcuts(
        &g,
        &parts,
        params,
        9,
        LargenessRule::Radius,
        OracleMode::PerArc,
    );
    let kp_q = measure_quality(&g, &parts, &kp.shortcuts, DilationMode::Exact).quality;
    let triv_q =
        measure_quality(&g, &parts, &trivial_shortcuts(&parts), DilationMode::Exact).quality;
    let glob_q = measure_quality(
        &g,
        &parts,
        &global_tree_shortcuts(&g, &parts, 0, Some(1)),
        DilationMode::Exact,
    )
    .quality;
    assert!(
        kp_q.total() < triv_q.total(),
        "KP {} vs trivial {}",
        kp_q.total(),
        triv_q.total()
    );
    assert!(
        kp_q.total() < glob_q.total(),
        "KP {} vs global tree {}",
        kp_q.total(),
        glob_q.total()
    );
}
