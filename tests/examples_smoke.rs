//! Smoke tests that execute each example's real `main` path, so
//! `cargo test` proves the examples don't just compile but run to
//! completion. Each example is `include!`d into its own module (the
//! binaries keep working untouched via `cargo run --example ...`).

mod quickstart {
    include!("../examples/quickstart.rs");
    pub fn run() {
        main()
    }
}

mod shortcut_tree_demo {
    include!("../examples/shortcut_tree_demo.rs");
    pub fn run() {
        main()
    }
}

mod social_network_mst {
    include!("../examples/social_network_mst.rs");
    pub fn run() {
        main()
    }
}

mod network_resilience {
    include!("../examples/network_resilience.rs");
    pub fn run() {
        main()
    }
}

mod quickstart_serve {
    include!("../examples/quickstart_serve.rs");
    pub fn run() {
        main()
    }
}

#[test]
fn quickstart_runs() {
    quickstart::run();
}

#[test]
fn shortcut_tree_demo_runs() {
    shortcut_tree_demo::run();
}

// The two application-scale examples simulate thousands of accounted
// CONGEST rounds; they stay in tier-1 but are the slowest entries, so
// they are also the first candidates for tier-2 if they ever grow.

#[test]
fn social_network_mst_runs() {
    social_network_mst::run();
}

#[test]
fn network_resilience_runs() {
    network_resilience::run();
}

#[test]
fn quickstart_serve_runs() {
    quickstart_serve::run();
}
