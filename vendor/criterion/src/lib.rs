//! Offline shim for the subset of the `criterion` API this workspace's
//! benches use. Measures wall-clock mean/min over `sample_size`
//! samples and prints one line per benchmark — no statistics engine,
//! no HTML reports. Passing `--test` (as `cargo test` does for bench
//! targets) runs each benchmark body exactly once, as upstream
//! criterion does in test mode.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
}

impl Settings {
    fn from_env() -> Self {
        // `cargo test` invokes harness=false bench binaries with
        // `--test`; `cargo bench` passes `--bench`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Settings {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            test_mode,
        }
    }
}

pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            settings: Settings::from_env(),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be >= 1");
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// Warm-up happens via one untimed call in [`Bencher::iter`]; the
    /// duration knob is accepted for API compatibility.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Upstream criterion parses CLI args here; the shim's settings
    /// already come from the environment, so this is a no-op pass-through.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.settings, None, &id.into(), &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
            _parent: self,
        }
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample_size must be >= 1");
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.settings, Some(&self.name), &id.into(), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.settings, Some(&self.name), &id.into(), &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one(
    settings: &Settings,
    group: Option<&str>,
    id: &BenchmarkId,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let label = match group {
        Some(g) => format!("{g}/{}", id.render()),
        None => id.render(),
    };
    let mut bencher = Bencher {
        samples: Vec::with_capacity(settings.sample_size),
        sample_size: if settings.test_mode {
            1
        } else {
            settings.sample_size
        },
        budget: if settings.test_mode {
            Duration::ZERO
        } else {
            settings.measurement_time
        },
    };
    f(&mut bencher);
    if settings.test_mode {
        println!("test-mode ok: {label}");
        return;
    }
    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{label}: no samples recorded (did the closure call iter()?)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().unwrap();
    println!(
        "{label}: mean {:>12?}  min {:>12?}  ({} samples)",
        mean,
        min,
        samples.len()
    );
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    /// Time the routine: one warm-up call, then up to `sample_size`
    /// timed calls bounded by the measurement-time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let started = Instant::now();
        for done in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            // Always record at least one sample, then respect the budget.
            if done > 0 && started.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// `criterion_group!(name, target1, target2)` or the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        c.settings.test_mode = false;
        let mut group = c.benchmark_group("g");
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &5u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        // warm-up + at least one timed sample
        assert!(calls >= 2);
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 3).render(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(0.5).render(), "0.5");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }
}
