//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors a miniature property-testing engine with a
//! proptest-compatible surface:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_flat_map`,
//!   `prop_filter`;
//! * strategies for ranges, tuples, [`strategy::Just`], `any::<T>()`,
//!   and [`collection::vec`];
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(...)]`), plus [`prop_assert!`] /
//!   [`prop_assert_eq!`];
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed sequence (fully reproducible runs), and failing
//! inputs are reported but **not shrunk**.

pub mod strategy {
    use rand::{Rng, SeedableRng};

    /// The RNG driving generation. Concrete to keep the trait simple.
    pub type TestRng = rand_chacha::ChaCha20Rng;

    pub fn rng_for_case(case: u64) -> TestRng {
        // Distinct, reproducible stream per case.
        TestRng::seed_from_u64(0x5eed_c0de ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A generator of values. Unlike real proptest there is no value
    /// tree / shrinking: `generate` produces the final value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                f,
            }
        }
    }

    /// `&S` is a strategy wherever `S` is, mirroring proptest.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
        T: Strategy,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: String,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            // Rejection sampling with a generous cap; a filter that
            // rejects this often is a bug in the strategy.
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 10000 consecutive values: {}",
                self.whence
            );
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F2);

    /// Types with a canonical "anything" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f64);

    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use core::ops::Range;
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    /// Run configuration; only `cases` is honored by this shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// proptest-compatible assertion; panics (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` block: an optional `#![proptest_config(...)]`
/// followed by `#[test] fn name(pat in strategy, ...) { body }` items.
/// Each test runs `cases` times over deterministic seeds; a failure
/// reports the case number (inputs are not shrunk).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut proptest_rng = $crate::strategy::rng_for_case(case);
                $(
                    let $pat = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut proptest_rng,
                    );
                )+
                let run = || -> () { $body };
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest case {}/{} failed in `{}` (deterministic seed; no shrinking)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..9), c in 1i64..4) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!((1..4).contains(&c));
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec(0u32..100, 0..20)) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn flat_map_filter(x in (2usize..30).prop_flat_map(|n| (Just(n), 0usize..30)
            .prop_filter("below n", move |(n, k)| k < n))) {
            let (n, k) = x;
            prop_assert!(k < n);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::{rng_for_case, Strategy};
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..10).map(|c| s.generate(&mut rng_for_case(c))).collect();
        let b: Vec<u64> = (0..10).map(|c| s.generate(&mut rng_for_case(c))).collect();
        assert_eq!(a, b);
    }
}
