//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors a miniature property-testing engine with a
//! proptest-compatible surface:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_flat_map`,
//!   `prop_filter`;
//! * strategies for ranges, tuples, [`strategy::Just`], `any::<T>()`,
//!   and [`collection::vec`];
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(...)]`), plus [`prop_assert!`] /
//!   [`prop_assert_eq!`];
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Cases are generated from a fixed deterministic seed sequence (fully
//! reproducible runs).
//!
//! # Shrinking
//!
//! Unlike earlier versions of this shim, failing inputs **are shrunk**.
//! The approach is choice-sequence minimization (à la Hypothesis)
//! rather than value trees: every random word a strategy draws while
//! generating a case is recorded on a *tape* ([`strategy::TestRng`]).
//! On failure, the runner searches for a simpler still-failing tape —
//! binary-searching the shortest failing prefix (missing words replay
//! as zero) and then binary-searching each word toward zero — and
//! replays generation from the minimized tape to report the minimized
//! counterexample. Because shrinking happens below the strategy layer,
//! it composes through `prop_map` / `prop_flat_map` / `prop_filter` for
//! free, and every integer strategy in this shim maps words to values
//! monotonically, so "smaller tape word" means "smaller value".

pub mod strategy {
    use rand::{RngCore, SeedableRng};

    /// The RNG driving generation: records every drawn word on a tape
    /// (so failing cases can be shrunk by tape minimization) or replays
    /// a previously recorded — possibly minimized — tape. Draws past
    /// the end of a replay tape yield zero, the minimal word.
    pub struct TestRng {
        mode: Mode,
    }

    enum Mode {
        Record {
            inner: rand_chacha::ChaCha20Rng,
            tape: Vec<u64>,
        },
        Replay {
            tape: Vec<u64>,
            pos: usize,
        },
    }

    impl TestRng {
        /// The words drawn so far (record mode) or the full source tape
        /// (replay mode).
        pub fn tape(&self) -> &[u64] {
            match &self.mode {
                Mode::Record { tape, .. } | Mode::Replay { tape, .. } => tape,
            }
        }

        /// Consumes the RNG, returning its tape.
        pub fn into_tape(self) -> Vec<u64> {
            match self.mode {
                Mode::Record { tape, .. } | Mode::Replay { tape, .. } => tape,
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            match &mut self.mode {
                Mode::Record { inner, tape } => {
                    let word = inner.next_u64();
                    tape.push(word);
                    word
                }
                Mode::Replay { tape, pos } => {
                    let word = tape.get(*pos).copied().unwrap_or(0);
                    *pos += 1;
                    word
                }
            }
        }

        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    /// Recording RNG with a distinct, reproducible stream per case.
    pub fn rng_for_case(case: u64) -> TestRng {
        TestRng {
            mode: Mode::Record {
                inner: rand_chacha::ChaCha20Rng::seed_from_u64(
                    0x5eed_c0de ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                tape: Vec::new(),
            },
        }
    }

    /// Replaying RNG over a recorded (or shrunk) tape.
    pub fn replay_rng(tape: &[u64]) -> TestRng {
        TestRng {
            mode: Mode::Replay {
                tape: tape.to_vec(),
                pos: 0,
            },
        }
    }

    /// A generator of values. There is no value tree: `generate`
    /// produces the final value directly, and shrinking operates on the
    /// [`TestRng`] tape underneath (see the crate docs).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                f,
            }
        }
    }

    /// `&S` is a strategy wherever `S` is, mirroring proptest.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
        T: Strategy,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: String,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            // Rejection sampling with a generous cap; a filter that
            // rejects this often is a bug in the strategy. (During
            // shrinking a minimized tape can trip this legitimately —
            // the runner treats a generation panic as "candidate
            // invalid", not as a failure.)
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 10000 consecutive values: {}",
                self.whence
            );
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F2);

    /// Types with a canonical "anything" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Drawn via the full-range `gen_range` rather than a
                    // truncating `gen::<$t>()`: the fixed-point
                    // multiply-shift maps the tape word to the value
                    // *monotonically*, which is what lets the shrinker's
                    // per-word binary search land on failure boundaries
                    // for every integer width (a truncating cast would
                    // make the low-bits value non-monotone in the word).
                    rand::Rng::gen_range(rng, <$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Two words, high then low; monotone per word (coordinate-wise),
    /// which is the granularity the shrinker minimizes at.
    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let hi = u64::arbitrary(rng);
            let lo = u64::arbitrary(rng);
            (u128::from(hi) << 64) | u128::from(lo)
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            u128::arbitrary(rng) as i128
        }
    }

    /// `false` on a zero word (the shrink target), monotone.
    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rand::Rng::gen_range(rng, 0u8..=1) == 1
        }
    }

    /// `Standard` f64 is already monotone in the word (`word >> 11`
    /// scaled into [0, 1)).
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rand::Rng::gen::<f64>(rng)
        }
    }

    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use core::ops::Range;
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    use crate::strategy::{replay_rng, rng_for_case, TestRng};
    use std::panic::resume_unwind;

    /// Run configuration; `cases` and `max_shrink_iters` are honored by
    /// this shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Upper bound on the number of candidate executions the tape
        /// shrinker may spend per failing case.
        pub max_shrink_iters: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 1024,
            }
        }
    }

    /// Outcome of executing one generated case (generation + body).
    pub enum CaseRun {
        /// The body returned normally.
        Pass,
        /// Generation itself panicked (e.g. `prop_filter` exhaustion on
        /// a shrunk tape). On a fresh case this is a strategy bug; on a
        /// shrink candidate it just marks the candidate invalid.
        GenFailed(Box<dyn std::any::Any + Send>),
        /// The body panicked: `repr` is the `Debug` form of the
        /// generated inputs, `panic` the payload.
        Fail {
            repr: String,
            panic: Box<dyn std::any::Any + Send>,
        },
    }

    /// Minimizes a failing tape: binary-searches the shortest failing
    /// prefix (truncated words replay as zero), then binary-searches
    /// each remaining word down toward zero, repeating to a fixpoint or
    /// until `max_iters` candidate executions are spent. Every returned
    /// tape is *known failing* — a candidate is only adopted after
    /// `exec` reproduced the failure on it. Returns the minimized tape
    /// and the number of successful shrink steps.
    pub fn shrink<F>(tape: Vec<u64>, exec: &F, max_iters: u32) -> (Vec<u64>, u32)
    where
        F: Fn(&mut TestRng) -> CaseRun,
    {
        let mut spent: u32 = 0;
        let mut steps: u32 = 0;
        let fails = |t: &[u64], spent: &mut u32| -> bool {
            if *spent >= max_iters {
                return false; // budget gone: conservatively "passing"
            }
            *spent += 1;
            matches!(exec(&mut replay_rng(t)), CaseRun::Fail { .. })
        };
        let mut tape = tape;
        loop {
            let mut progress = false;
            // Phase 1: shortest failing prefix. `hi` only ever moves to
            // a prefix length verified to fail, so the truncation below
            // never adopts an unverified tape.
            let mut lo = 0usize;
            let mut hi = tape.len();
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if fails(&tape[..mid], &mut spent) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            if hi < tape.len() {
                tape.truncate(hi);
                progress = true;
                steps += 1;
            }
            // Phase 2: minimize each word toward zero (all integer
            // strategies in this shim map words to values
            // monotonically, so this is a binary search on the value).
            for i in 0..tape.len() {
                let original = tape[i];
                if original == 0 {
                    continue;
                }
                tape[i] = 0;
                if fails(&tape, &mut spent) {
                    steps += 1;
                    progress = true;
                    continue;
                }
                let mut lo = 0u64; // known passing
                let mut hi = original; // known failing
                while hi - lo > 1 {
                    let mid = lo + (hi - lo) / 2;
                    tape[i] = mid;
                    if fails(&tape, &mut spent) {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                tape[i] = hi;
                if hi < original {
                    steps += 1;
                    progress = true;
                }
            }
            if !progress || spent >= max_iters {
                break;
            }
        }
        (tape, steps)
    }

    /// The per-test driver behind the [`proptest!`](crate::proptest)
    /// macro: runs `cases` deterministic cases, and on the first failure
    /// shrinks its tape, reports the raw and minimized counterexamples,
    /// and re-raises the (minimized run's) panic.
    pub fn run_cases<F>(name: &str, config: &ProptestConfig, exec: &F)
    where
        F: Fn(&mut TestRng) -> CaseRun,
    {
        for case in 0..config.cases as u64 {
            let mut rng = rng_for_case(case);
            match exec(&mut rng) {
                CaseRun::Pass => {}
                CaseRun::GenFailed(payload) => {
                    eprintln!(
                        "proptest `{name}`: strategy generation failed on case {}/{}",
                        case + 1,
                        config.cases,
                    );
                    resume_unwind(payload);
                }
                CaseRun::Fail {
                    repr: raw_repr,
                    panic: raw_panic,
                } => {
                    let raw_tape = rng.into_tape();
                    let raw_words = raw_tape.len();
                    let (min_tape, steps) = shrink(raw_tape, exec, config.max_shrink_iters);
                    match exec(&mut replay_rng(&min_tape)) {
                        CaseRun::Fail { repr, panic } => {
                            eprintln!(
                                "proptest case {}/{} failed in `{}`\n  \
                                 raw input:       {}\n  \
                                 minimized input: {}\n  \
                                 ({} shrink steps; tape {} -> {} words)",
                                case + 1,
                                config.cases,
                                name,
                                raw_repr,
                                repr,
                                steps,
                                raw_words,
                                min_tape.len(),
                            );
                            resume_unwind(panic);
                        }
                        // Unreachable in practice (shrink only returns
                        // verified-failing tapes); fall back to the raw
                        // failure rather than masking it.
                        _ => {
                            eprintln!(
                                "proptest case {}/{} failed in `{}` (input: {})",
                                case + 1,
                                config.cases,
                                name,
                                raw_repr,
                            );
                            resume_unwind(raw_panic);
                        }
                    }
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// proptest-compatible assertion; panics (the runner catches the panic
/// and shrinks the failing input).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` block: an optional `#![proptest_config(...)]`
/// followed by `#[test] fn name(pat in strategy, ...) { body }` items.
/// Each test runs `cases` times over deterministic seeds; a failing
/// case is shrunk (tape minimization, see the crate docs) and both the
/// raw and the minimized counterexample are reported.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let exec = |proptest_rng: &mut $crate::strategy::TestRng|
                -> $crate::test_runner::CaseRun
            {
                let generated = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || ( $( $crate::strategy::Strategy::generate(&($strat), proptest_rng), )+ ),
                ));
                let values = match generated {
                    Ok(values) => values,
                    Err(payload) => return $crate::test_runner::CaseRun::GenFailed(payload),
                };
                let repr = format!("{:?}", values);
                let ($($pat,)+) = values;
                match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || -> () { $body },
                )) {
                    Ok(()) => $crate::test_runner::CaseRun::Pass,
                    Err(panic) => $crate::test_runner::CaseRun::Fail { repr, panic },
                }
            };
            $crate::test_runner::run_cases(stringify!($name), &config, &exec);
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::{replay_rng, rng_for_case, Strategy, TestRng};
    use crate::test_runner::{shrink, CaseRun};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..9), c in 1i64..4) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!((1..4).contains(&c));
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec(0u32..100, 0..20)) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn flat_map_filter(x in (2usize..30).prop_flat_map(|n| (Just(n), 0usize..30)
            .prop_filter("below n", move |(n, k)| k < n))) {
            let (n, k) = x;
            prop_assert!(k < n);
        }

        /// A deliberately failing property, exercising the whole
        /// macro-level pipeline: the failing case is shrunk (to `x = 0`,
        /// since the property fails for every `x`) and the panic is
        /// re-raised — which is exactly what `should_panic` expects.
        #[test]
        #[should_panic]
        fn deliberately_failing_property_panics_after_shrinking(x in 0u64..1000) {
            prop_assert!(x > 1000, "impossible for {}", x);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..10).map(|c| s.generate(&mut rng_for_case(c))).collect();
        let b: Vec<u64> = (0..10).map(|c| s.generate(&mut rng_for_case(c))).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn replaying_a_recorded_tape_reproduces_the_value() {
        let s = (0u64..1_000_000, 3usize..40);
        let mut rec = rng_for_case(11);
        let v = s.generate(&mut rec);
        let tape = rec.into_tape();
        assert!(!tape.is_empty());
        let v2 = s.generate(&mut replay_rng(&tape));
        assert_eq!(v, v2);
    }

    #[test]
    fn empty_tape_replays_as_minimal_values() {
        let v = (5u32..100).generate(&mut replay_rng(&[]));
        assert_eq!(v, 5, "zero words must map to the range minimum");
        let w = crate::collection::vec(0u8..10, 0..7).generate(&mut replay_rng(&[]));
        assert!(w.is_empty());
    }

    /// The shim exec closure the macro would build for a deliberately
    /// failing property `assert!(x < limit)` over `0u64..1_000_000`.
    fn failing_exec(limit: u64) -> impl Fn(&mut TestRng) -> CaseRun {
        move |rng: &mut TestRng| {
            let x = (0u64..1_000_000).generate(rng);
            let repr = format!("{x:?}");
            match std::panic::catch_unwind(move || assert!(x < limit)) {
                Ok(()) => CaseRun::Pass,
                Err(panic) => CaseRun::Fail { repr, panic },
            }
        }
    }

    /// The ISSUE-3 acceptance demo: a deliberately failing property
    /// whose shrunk counterexample is *strictly smaller* than the raw
    /// generated case — in fact exactly the boundary value `limit`.
    #[test]
    fn shrinking_finds_a_smaller_counterexample_than_the_raw_case() {
        let exec = failing_exec(500);
        // Find a raw failing case the way `run_cases` would.
        let (case, raw_value, raw_tape) = (0..64u64)
            .find_map(|case| {
                let mut rng = rng_for_case(case);
                match exec(&mut rng) {
                    CaseRun::Fail { repr, .. } => {
                        Some((case, repr.parse::<u64>().unwrap(), rng.into_tape()))
                    }
                    _ => None,
                }
            })
            .expect("a value >= 500 appears within 64 cases");
        assert!(raw_value >= 500, "case {case} failed with {raw_value}");
        let (min_tape, steps) = shrink(raw_tape, &exec, 1024);
        let CaseRun::Fail { repr, .. } = exec(&mut replay_rng(&min_tape)) else {
            panic!("minimized tape must still fail");
        };
        let minimized: u64 = repr.parse().unwrap();
        assert_eq!(
            minimized, 500,
            "binary search lands exactly on the failure boundary"
        );
        assert!(minimized < raw_value || raw_value == 500);
        assert!(steps >= 1, "at least one shrink step must succeed");
    }

    /// Structural shrinking through a collection: a property failing on
    /// "3 or more elements" minimizes to exactly `[0, 0, 0]` — the tape
    /// is truncated to the single length word (elements replay as
    /// zeros), then that word is binary-searched down to the smallest
    /// length draw that still yields 3 elements.
    #[test]
    fn shrinking_minimizes_vec_cases_structurally() {
        let exec = |rng: &mut TestRng| {
            let v = crate::collection::vec(0u32..100, 0..20).generate(rng);
            let repr = format!("{v:?}");
            match std::panic::catch_unwind(move || assert!(v.len() < 3)) {
                Ok(()) => CaseRun::Pass,
                Err(panic) => CaseRun::Fail { repr, panic },
            }
        };
        let (raw_tape, raw_repr) = (0..64u64)
            .find_map(|case| {
                let mut rng = rng_for_case(case);
                match exec(&mut rng) {
                    CaseRun::Fail { repr, .. } => Some((rng.into_tape(), repr)),
                    _ => None,
                }
            })
            .expect("a vec of length >= 3 appears within 64 cases");
        let (min_tape, _steps) = shrink(raw_tape, &exec, 1024);
        let CaseRun::Fail { repr, .. } = exec(&mut replay_rng(&min_tape)) else {
            panic!("minimized tape must still fail");
        };
        assert_eq!(repr, "[0, 0, 0]", "raw case was {raw_repr}");
        assert_eq!(min_tape.len(), 1, "only the length word survives");
    }

    /// The monotone-word contract must hold for *narrow* integer
    /// strategies too: an `any::<u32>()` counterexample minimizes to
    /// the exact failure boundary, not an arbitrary failing value (a
    /// truncating word→value cast would break the binary search).
    #[test]
    fn shrinking_narrow_any_lands_on_the_boundary() {
        let exec = |rng: &mut TestRng| {
            let x = crate::strategy::any::<u32>().generate(rng);
            let repr = format!("{x:?}");
            match std::panic::catch_unwind(move || assert!(x < 500)) {
                Ok(()) => CaseRun::Pass,
                Err(panic) => CaseRun::Fail { repr, panic },
            }
        };
        let raw_tape = (0..64u64)
            .find_map(|case| {
                let mut rng = rng_for_case(case);
                matches!(exec(&mut rng), CaseRun::Fail { .. }).then(|| rng.into_tape())
            })
            .expect("a u32 >= 500 appears within 64 cases");
        let (min_tape, _) = shrink(raw_tape, &exec, 1024);
        let CaseRun::Fail { repr, .. } = exec(&mut replay_rng(&min_tape)) else {
            panic!("minimized tape must still fail");
        };
        assert_eq!(repr.parse::<u32>().unwrap(), 500);
    }

    /// Shrink candidates whose generation panics (e.g. a filter that
    /// becomes unsatisfiable on a zeroed tape) are rejected, not
    /// treated as failures — and never mask the real counterexample.
    #[test]
    fn generation_panics_during_shrinking_are_treated_as_invalid() {
        let strat = (500u64..1_000_000).prop_filter("nonzero draw", |&x| x != 500);
        let exec = move |rng: &mut TestRng| {
            let gen = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Strategy::generate(&strat, rng)
            }));
            let x = match gen {
                Ok(x) => x,
                Err(payload) => return CaseRun::GenFailed(payload),
            };
            let repr = format!("{x:?}");
            match std::panic::catch_unwind(move || assert!(x < 501)) {
                Ok(()) => CaseRun::Pass,
                Err(panic) => CaseRun::Fail { repr, panic },
            }
        };
        let raw_tape = (0..64u64)
            .find_map(|case| {
                let mut rng = rng_for_case(case);
                matches!(exec(&mut rng), CaseRun::Fail { .. }).then(|| rng.into_tape())
            })
            .expect("a failing case exists");
        let (min_tape, _) = shrink(raw_tape, &exec, 1024);
        let CaseRun::Fail { repr, .. } = exec(&mut replay_rng(&min_tape)) else {
            panic!("minimized tape must still fail");
        };
        // 500 is filtered out, so the minimum reachable failing value
        // is 501.
        assert_eq!(repr.parse::<u64>().unwrap(), 501);
    }
}
