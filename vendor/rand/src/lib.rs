//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace. The build environment has no access to crates.io, so the
//! workspace vendors a minimal, deterministic reimplementation instead
//! of the real crate. Only the surface actually exercised by the code
//! is provided: [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng`] (`from_seed`, `seed_from_u64`), and
//! [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! Numeric streams are NOT bit-compatible with the upstream crate; the
//! workspace only relies on determinism (same seed, same stream), which
//! this shim guarantees.

use std::ops::{Range, RangeInclusive};

/// Core random number generation: the raw word-level interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a primitive type uniformly at random.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`] (stand-in for rand's `Standard`
/// distribution bound).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Map a random word to a double in [0, 1) with 53 bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types over which [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from [low, high); `high` must be strictly greater
    /// than `low`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from [low, high].
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = mul_shift(rng.next_u64(), span);
                (low as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span == 0 {
                    // Full u128 span cannot occur for <=64-bit types.
                    return rng.next_u64() as $t;
                }
                let draw = mul_shift(rng.next_u64(), span);
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Scale a uniform 64-bit word into [0, span) without modulo bias
/// (fixed-point multiply-shift; bias is < 2^-64 and irrelevant here).
#[inline]
fn mul_shift(word: u64, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    (word as u128 * span) >> 64
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let u = unit_f64(rng.next_u64());
        let x = low + (high - low) * u;
        // Guard against rounding up to the excluded endpoint.
        if x >= high {
            low
        } else {
            x
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty inclusive range");
        low + (high - low) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Seedable construction, mirroring rand's `SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit state into a full seed via SplitMix64 (same
    /// construction upstream rand uses, so seeds diffuse well).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod seq {
    //! Slice sampling helpers (subset of `rand::seq`).

    use super::RngCore;

    pub trait SliceRandom {
        type Item;

        /// Uniformly pick one element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Iterate over `amount` distinct elements chosen uniformly
        /// (fewer if the slice is shorter than `amount`).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(crate::SampleUniform::sample_half_open(rng, 0, self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, crate::SampleUniform::sample_inclusive(rng, 0, i));
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            // Partial Fisher–Yates over an index table.
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = crate::SampleUniform::sample_half_open(rng, i, idx.len());
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

pub mod rngs {
    //! Minimal `rngs` module for API compatibility.

    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256**-style generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // Avoid the all-zero state, which is a fixed point.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest.iter_mut() {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Counter(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [42u8];
        assert_eq!(one.choose(&mut rng), Some(&42));
    }
}
