//! Offline shim for `rand_chacha`: a genuine ChaCha-based generator
//! (8/12/20 rounds) implementing the workspace's vendored `rand`
//! traits. Deterministic per seed; the keystream follows the ChaCha
//! specification (RFC 8439 quarter-round, 64-bit block counter), though
//! word-level output order is not guaranteed to be bit-identical to
//! the upstream crate. The workspace only relies on determinism.

use rand::{RngCore, SeedableRng};

macro_rules! define_chacha {
    ($name:ident, $rounds:expr) => {
        #[derive(Clone, Debug)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buf: [u32; 16],
            /// Next unread word index in `buf`; 16 means "refill".
            pos: usize,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (i, chunk) in seed.chunks_exact(4).enumerate() {
                    key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                $name {
                    key,
                    counter: 0,
                    buf: [0; 16],
                    pos: 16,
                }
            }
        }

        impl $name {
            fn refill(&mut self) {
                self.buf = chacha_block(&self.key, self.counter, $rounds);
                self.counter = self.counter.wrapping_add(1);
                self.pos = 0;
            }

            fn next_word(&mut self) -> u32 {
                if self.pos >= 16 {
                    self.refill();
                }
                let w = self.buf[self.pos];
                self.pos += 1;
                w
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.next_word()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_word() as u64;
                let hi = self.next_word() as u64;
                (hi << 32) | lo
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(4) {
                    let word = self.next_word().to_le_bytes();
                    chunk.copy_from_slice(&word[..chunk.len()]);
                }
            }
        }
    };
}

define_chacha!(ChaCha8Rng, 8);
define_chacha!(ChaCha12Rng, 12);
define_chacha!(ChaCha20Rng, 20);

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64, rounds: u32) -> [u32; 16] {
    // "expand 32-byte k" constants, 256-bit key, 64-bit counter,
    // 64-bit zero nonce.
    let mut state = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let initial = state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (s, i) in state.iter_mut().zip(initial) {
        *s = s.wrapping_add(i);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn chacha20_zero_key_matches_rfc_first_word() {
        // ChaCha20 block with all-zero key, counter 0, zero nonce:
        // first keystream word per the reference implementation.
        let block = chacha_block(&[0; 8], 0, 20);
        assert_eq!(block[0], 0xade0_b876);
    }

    #[test]
    fn rng_trait_methods_work() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let x: u64 = rng.gen_range(0..100);
        assert!(x < 100);
        let _: bool = rng.gen_bool(0.5);
        let c = rng.clone();
        let mut c2 = c;
        let mut rng2 = rng.clone();
        assert_eq!(c2.next_u64(), { rng2.next_u64() });
    }
}
